"""Tests of the diurnal demand profile and synthetic traffic dataset (Figure 4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.demand.diurnal import (
    DEFAULT_HOURLY_PERCENT,
    DiurnalProfile,
    SyntheticTrafficDataset,
    time_of_day_percentiles,
)


class TestDiurnalProfile:
    def test_median_normalisation(self):
        profile = DiurnalProfile()
        hours = np.linspace(0.0, 24.0, 1440, endpoint=False)
        assert float(np.median(profile.fraction_of_median(hours))) == pytest.approx(
            1.0, abs=0.02
        )

    def test_trough_in_early_morning(self):
        profile = DiurnalProfile()
        hours = np.linspace(0.0, 24.0, 1440, endpoint=False)
        values = profile.fraction_of_median(hours)
        trough_hour = hours[int(np.argmin(values))]
        assert 2.0 <= trough_hour <= 6.0
        assert profile.trough_fraction() < 0.6

    def test_peak_in_evening(self):
        profile = DiurnalProfile()
        assert 18.0 <= profile.peak_hour() <= 23.0
        assert profile.peak_fraction() > 1.5

    def test_wraps_hours(self):
        profile = DiurnalProfile()
        assert profile.fraction_of_median(25.0) == pytest.approx(
            profile.fraction_of_median(1.0)
        )
        assert profile.fraction_of_median(-2.0) == pytest.approx(
            profile.fraction_of_median(22.0)
        )

    @given(st.floats(min_value=0.0, max_value=48.0))
    def test_always_positive(self, hour):
        assert DiurnalProfile().fraction_of_median(hour) > 0.0

    def test_table_validation(self):
        with pytest.raises(ValueError):
            DiurnalProfile(hourly_percent=(100.0,) * 23)
        with pytest.raises(ValueError):
            DiurnalProfile(hourly_percent=(0.0,) + DEFAULT_HOURLY_PERCENT[1:])

    def test_scalar_and_array_agree(self):
        profile = DiurnalProfile()
        array = profile.fraction_of_median(np.array([3.0, 12.0, 21.0]))
        for index, hour in enumerate((3.0, 12.0, 21.0)):
            assert array[index] == pytest.approx(profile.fraction_of_median(hour))


class TestSyntheticDataset:
    def test_shapes(self):
        dataset = SyntheticTrafficDataset(n_sites=20, n_days=3)
        hours, demand = dataset.generate()
        assert demand.shape == (20, hours.shape[0])
        assert hours.shape[0] == 3 * 24 * dataset.samples_per_hour

    def test_deterministic_with_seed(self):
        a = SyntheticTrafficDataset(n_sites=5, n_days=2, seed=11).generate()[1]
        b = SyntheticTrafficDataset(n_sites=5, n_days=2, seed=11).generate()[1]
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = SyntheticTrafficDataset(n_sites=5, n_days=2, seed=1).generate()[1]
        b = SyntheticTrafficDataset(n_sites=5, n_days=2, seed=2).generate()[1]
        assert not np.array_equal(a, b)

    def test_all_positive(self):
        _, demand = SyntheticTrafficDataset(n_sites=10, n_days=2).generate()
        assert np.all(demand > 0)


class TestPercentiles:
    @pytest.fixture(scope="class")
    def percentile_data(self):
        dataset = SyntheticTrafficDataset(n_sites=80, n_days=7, seed=3)
        hours, demand = dataset.generate()
        centres, values = time_of_day_percentiles(hours, demand)
        return centres, values

    def test_shapes(self, percentile_data):
        centres, values = percentile_data
        assert centres.shape == (24,)
        assert values.shape == (2, 24)

    def test_evening_peak_above_morning_trough(self, percentile_data):
        _, values = percentile_data
        median_curve = values[0]
        assert median_curve[20] > 2.0 * median_curve[4]

    def test_95th_above_median(self, percentile_data):
        _, values = percentile_data
        assert np.all(values[1] >= values[0])

    def test_median_curve_in_percent(self, percentile_data):
        _, values = percentile_data
        # Values are percent-of-median: the daily mid-range should straddle 100.
        assert values[0].min() < 100.0 < values[0].max()

    def test_validation(self):
        with pytest.raises(ValueError):
            time_of_day_percentiles(np.arange(10.0), np.ones((3, 5)))
        with pytest.raises(ValueError):
            time_of_day_percentiles(np.arange(10.0), np.ones((3, 10)), bin_hours=7.0)
