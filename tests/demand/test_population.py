"""Tests of the synthetic population grid (SEDAC substitute, Figure 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.demand.population import METRO_AREAS, PopulationModel, synthetic_population_grid


class TestMetroCatalogue:
    def test_catalogue_size(self):
        # A couple of hundred metro areas back the spatial structure.
        assert len(METRO_AREAS) >= 200

    def test_coordinates_valid(self):
        for metro in METRO_AREAS:
            assert -90.0 <= metro.latitude_deg <= 90.0
            assert -180.0 <= metro.longitude_deg <= 180.0
            assert metro.population_millions > 0

    def test_contains_major_cities(self):
        names = {metro.name for metro in METRO_AREAS}
        for expected in ("Tokyo", "Delhi", "Sao Paulo", "Lagos", "New York", "London"):
            assert expected in names


class TestPopulationGrid:
    def test_total_population(self, population_grid_1deg):
        total = population_grid_1deg.total(area_weighted=True)
        assert total == pytest.approx(8.0e9, rel=0.02)

    def test_peak_density_magnitude(self, population_grid_1deg):
        # SEDAC's 0.5-degree maxima are a few thousand people per km^2; the
        # synthetic grid at 1 degree should be in the same range.
        peak = population_grid_1deg.values.max()
        assert 2000.0 <= peak <= 15000.0

    def test_max_density_peaks_at_intermediate_northern_latitudes(self, population_grid_1deg):
        profile = population_grid_1deg.max_over_longitude()
        lats = population_grid_1deg.latitudes_deg
        peak_latitude = lats[int(np.argmax(profile))]
        assert 15.0 <= peak_latitude <= 45.0

    def test_poles_empty(self, population_grid_1deg):
        profile = population_grid_1deg.max_over_longitude()
        lats = population_grid_1deg.latitudes_deg
        assert profile[np.abs(lats) > 80.0].max() == 0.0

    def test_northern_hemisphere_dominates(self, population_grid_1deg):
        lats = population_grid_1deg.latitudes_deg
        area = population_grid_1deg.cell_area_km2()
        north = (population_grid_1deg.values * area)[lats > 0, :].sum()
        south = (population_grid_1deg.values * area)[lats < 0, :].sum()
        assert north > 3.0 * south

    def test_oceans_sparse(self, population_grid_1deg):
        # The central Pacific should be essentially empty.
        assert population_grid_1deg.value_at(0.0, -140.0) < 5.0

    def test_resolution_validation(self):
        with pytest.raises(ValueError):
            PopulationModel(metro_sigma_km=-1.0)
        with pytest.raises(ValueError):
            PopulationModel(rural_fraction=1.5)
        with pytest.raises(ValueError):
            PopulationModel(world_population_billions=0.0)

    def test_finer_grid_has_higher_peak(self):
        coarse = synthetic_population_grid(resolution_deg=2.0)
        fine = synthetic_population_grid(resolution_deg=1.0)
        assert fine.values.max() >= coarse.values.max()
