"""Tests of the spatiotemporal demand model (Figures 5 and 8)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.demand.spatiotemporal import SpatiotemporalDemandModel, build_demand_grid


class TestSnapshots:
    def test_snapshot_preserves_grid_shape(self, demand_model):
        snapshot = demand_model.snapshot(12.0)
        assert snapshot.values.shape == demand_model.population.values.shape

    def test_evening_side_louder_than_morning_side(self, demand_model):
        # At 12:00 UTC, Europe (~15 E) is at early afternoon while the central
        # Pacific (~-165 E) is in the middle of the night: scaling by the
        # diurnal profile must lower the Pacific column relative to Europe's.
        snapshot = demand_model.snapshot(12.0)
        population = demand_model.population
        europe_col = snapshot.index_of(50.0, 15.0)[1]
        ratio_europe = snapshot.values[:, europe_col].sum() / max(
            population.values[:, europe_col].sum(), 1e-9
        )
        night_col = snapshot.index_of(0.0, -165.0)[1]
        ratio_night = snapshot.values[:, night_col].sum() / max(
            population.values[:, night_col].sum(), 1e-9
        )
        assert ratio_europe > ratio_night

    def test_total_demand_varies_through_day(self, demand_model):
        totals = [demand_model.snapshot(hour).total() for hour in (0.0, 6.0, 12.0, 18.0)]
        assert max(totals) > 1.1 * min(totals)


class TestLatitudeTimeGrid:
    def test_peak_equals_multiplier(self, demand_model):
        grid = demand_model.latitude_time_grid(bandwidth_multiplier=42.0)
        assert grid.values.max() == pytest.approx(42.0)

    def test_peak_location(self, demand_model):
        grid = demand_model.latitude_time_grid(bandwidth_multiplier=100.0)
        peak_lat, peak_time, _ = grid.peak()
        # Peak demand sits at intermediate Northern latitudes in the evening.
        assert 15.0 <= peak_lat <= 45.0
        assert 18.0 <= peak_time <= 23.0

    def test_night_cells_below_day_cells(self, demand_model):
        grid = demand_model.latitude_time_grid(bandwidth_multiplier=100.0)
        row = int(np.argmax(grid.values.max(axis=1)))
        night_col = grid.index_of(0.0, 4.5)[1]
        evening_col = grid.index_of(0.0, 20.5)[1]
        assert grid.values[row, night_col] < grid.values[row, evening_col]

    def test_no_demand_at_poles(self, demand_model):
        grid = demand_model.latitude_time_grid(bandwidth_multiplier=100.0)
        polar_rows = np.abs(grid.latitudes_deg) > 80.0
        assert grid.values[polar_rows, :].max() == 0.0

    def test_scaling_linearity(self, demand_model):
        small = demand_model.latitude_time_grid(bandwidth_multiplier=10.0)
        large = demand_model.latitude_time_grid(bandwidth_multiplier=100.0)
        np.testing.assert_allclose(large.values, 10.0 * small.values, rtol=1e-9)

    def test_max_density_per_latitude_matches_population(self, demand_model):
        profile = demand_model.max_density_per_latitude()
        assert profile.shape[0] == demand_model.population.n_lat
        assert profile.max() == pytest.approx(demand_model.population.values.max())


class TestConvenienceBuilders:
    def test_build_demand_grid(self):
        grid = build_demand_grid(
            bandwidth_multiplier=5.0,
            lat_resolution_deg=6.0,
            time_resolution_hours=2.0,
            population_resolution_deg=2.0,
        )
        assert grid.values.shape == (30, 12)
        assert grid.values.max() == pytest.approx(5.0)
