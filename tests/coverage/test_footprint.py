"""Tests of spot-beam footprint geometry."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.constants import EARTH_RADIUS_KM
from repro.coverage.footprint import (
    Footprint,
    coverage_half_angle_rad,
    footprint_area_km2,
    nadir_angle_rad,
    slant_range_km,
)


class TestHalfAngle:
    def test_known_values(self):
        # 560 km / 25 degrees elevation: roughly 8.6 degrees half-angle.
        assert math.degrees(coverage_half_angle_rad(560.0, 25.0)) == pytest.approx(8.6, abs=0.2)
        # 1215 km / 25 degrees: roughly 15.4 degrees.
        assert math.degrees(coverage_half_angle_rad(1215.0, 25.0)) == pytest.approx(
            15.4, abs=0.2
        )

    @given(st.floats(min_value=300.0, max_value=2000.0))
    def test_wider_at_lower_elevation(self, altitude):
        assert coverage_half_angle_rad(altitude, 10.0) > coverage_half_angle_rad(altitude, 40.0)

    @given(st.floats(min_value=5.0, max_value=60.0))
    def test_wider_at_higher_altitude(self, elevation):
        assert coverage_half_angle_rad(1500.0, elevation) > coverage_half_angle_rad(
            400.0, elevation
        )

    def test_zero_elevation_is_horizon_limit(self):
        half_angle = coverage_half_angle_rad(560.0, 0.0)
        expected = math.acos(EARTH_RADIUS_KM / (EARTH_RADIUS_KM + 560.0))
        assert half_angle == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            coverage_half_angle_rad(-10.0, 25.0)
        with pytest.raises(ValueError):
            coverage_half_angle_rad(560.0, 95.0)


class TestDerivedQuantities:
    def test_nadir_plus_central_plus_elevation(self):
        # The three angles of the Earth-centre / satellite / user triangle
        # must sum to 90 degrees.
        altitude, elevation = 560.0, 25.0
        total = (
            nadir_angle_rad(altitude, elevation)
            + coverage_half_angle_rad(altitude, elevation)
            + math.radians(elevation)
        )
        assert total == pytest.approx(math.pi / 2.0)

    def test_slant_range_bounds(self):
        altitude = 560.0
        assert slant_range_km(altitude, 89.0) == pytest.approx(altitude, rel=0.01)
        assert slant_range_km(altitude, 25.0) > altitude

    def test_area_scales_with_half_angle(self):
        small = footprint_area_km2(400.0, 40.0)
        large = footprint_area_km2(1200.0, 20.0)
        assert large > small

    def test_footprint_value_object(self):
        footprint = Footprint(altitude_km=560.0, min_elevation_deg=25.0)
        assert footprint.half_angle_deg == pytest.approx(8.6, abs=0.2)
        assert footprint.half_width_km == pytest.approx(
            EARTH_RADIUS_KM * footprint.half_angle_rad
        )
        assert footprint.covers(footprint.half_angle_rad * 0.9)
        assert not footprint.covers(footprint.half_angle_rad * 1.1)
