"""Tests of ground-site visibility computations."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.constants import EARTH_RADIUS_KM
from repro.coverage.visibility import (
    elevation_angle_rad,
    is_visible,
    slant_range_to_km,
    visibility_windows,
)
from repro.orbits.elements import OrbitalElements
from repro.orbits.frames import ecef_to_eci, geodetic_to_ecef


class TestElevation:
    def test_zenith_pass(self, epoch):
        site_lat, site_lon = math.radians(10.0), math.radians(45.0)
        overhead_ecef = geodetic_to_ecef(site_lat, site_lon, 560.0)
        overhead_eci = ecef_to_eci(overhead_ecef, epoch)
        elevation = elevation_angle_rad(overhead_eci, site_lat, site_lon, epoch)
        assert math.degrees(elevation) == pytest.approx(90.0, abs=1e-6)

    def test_antipodal_satellite_below_horizon(self, epoch):
        site_lat, site_lon = math.radians(10.0), math.radians(45.0)
        antipode = geodetic_to_ecef(-site_lat, site_lon + math.pi, 560.0)
        elevation = elevation_angle_rad(ecef_to_eci(antipode, epoch), site_lat, site_lon, epoch)
        assert elevation < 0.0

    def test_slant_range_at_zenith(self, epoch):
        site_lat, site_lon = 0.3, -1.0
        overhead = ecef_to_eci(geodetic_to_ecef(site_lat, site_lon, 800.0), epoch)
        assert slant_range_to_km(overhead, site_lat, site_lon, epoch) == pytest.approx(
            800.0, rel=1e-9
        )

    def test_is_visible_threshold(self, epoch):
        site_lat, site_lon = math.radians(0.0), math.radians(0.0)
        overhead = ecef_to_eci(geodetic_to_ecef(site_lat, site_lon, 560.0), epoch)
        assert is_visible(overhead, site_lat, site_lon, epoch, min_elevation_deg=80.0)

    def test_coincident_position_rejected(self, epoch):
        site_lat, site_lon = 0.0, 0.0
        site = ecef_to_eci(geodetic_to_ecef(site_lat, site_lon, 0.0), epoch)
        with pytest.raises(ValueError):
            elevation_angle_rad(site, site_lat, site_lon, epoch)


class TestVisibilityWindows:
    def test_leo_pass_durations(self, epoch):
        # A 560 km satellite passing over a mid-latitude site produces passes
        # of at most ~10 minutes above a 25-degree mask.
        elements = OrbitalElements.circular(560.0, 65.0)
        windows = visibility_windows(
            elements, epoch, 45.0, 0.0, duration_s=6 * 3600.0, step_s=30.0,
            min_elevation_deg=25.0,
        )
        for window in windows:
            assert window.duration_s <= 12 * 60.0

    def test_station_outside_inclination_band_sees_nothing(self, epoch):
        elements = OrbitalElements.circular(560.0, 30.0)
        windows = visibility_windows(
            elements, epoch, 80.0, 0.0, duration_s=2 * 3600.0, step_s=60.0
        )
        assert windows == []

    def test_step_validation(self, epoch):
        elements = OrbitalElements.circular(560.0, 65.0)
        with pytest.raises(ValueError):
            visibility_windows(elements, epoch, 45.0, 0.0, 3600.0, step_s=0.0)
