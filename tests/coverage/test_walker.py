"""Tests of Walker-delta generation, coverage checking and sizing."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.constants import EARTH_RADIUS_KM
from repro.coverage.footprint import coverage_half_angle_rad
from repro.coverage.walker import (
    WalkerDelta,
    circular_positions_eci,
    coverage_fraction,
    is_continuously_covered,
    minimum_walker_for_coverage,
    streets_of_coverage_size,
)


class TestWalkerDelta:
    def test_satellite_count(self):
        wd = WalkerDelta(560.0, 53.0, total_satellites=66, planes=6, phasing=1)
        assert len(wd.satellite_elements()) == 66
        assert wd.satellites_per_plane == 11

    def test_validation(self):
        with pytest.raises(ValueError):
            WalkerDelta(560.0, 53.0, total_satellites=10, planes=3)
        with pytest.raises(ValueError):
            WalkerDelta(560.0, 53.0, total_satellites=12, planes=3, phasing=3)

    def test_planes_evenly_spread(self):
        wd = WalkerDelta(560.0, 53.0, total_satellites=12, planes=4, phasing=1)
        raans = sorted({round(e.raan_deg, 6) for e in wd.satellite_elements()})
        assert raans == pytest.approx([0.0, 90.0, 180.0, 270.0])

    def test_all_share_inclination_and_altitude(self):
        wd = WalkerDelta(700.0, 65.0, total_satellites=20, planes=5, phasing=2)
        for elements in wd.satellite_elements():
            assert elements.inclination_deg == pytest.approx(65.0)
            assert elements.altitude_km == pytest.approx(700.0)

    def test_raan_and_phase_arrays_match_elements(self):
        wd = WalkerDelta(560.0, 53.0, total_satellites=12, planes=3, phasing=1)
        raan, phase = wd.raan_and_phase_rad()
        elements = wd.satellite_elements()
        np.testing.assert_allclose(raan, [e.raan_rad for e in elements], atol=1e-12)
        np.testing.assert_allclose(
            phase % (2 * math.pi), [e.true_anomaly_rad for e in elements], atol=1e-12
        )


class TestPositions:
    def test_radius(self):
        positions = circular_positions_eci(
            560.0, math.radians(53.0), np.array([0.0, 1.0]), np.array([0.0, 2.0])
        )
        radii = np.linalg.norm(positions, axis=1)
        np.testing.assert_allclose(radii, EARTH_RADIUS_KM + 560.0)

    def test_equator_start(self):
        positions = circular_positions_eci(560.0, math.radians(53.0), np.array([0.0]), np.array([0.0]))
        assert positions[0, 2] == pytest.approx(0.0)
        assert positions[0, 0] == pytest.approx(EARTH_RADIUS_KM + 560.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            circular_positions_eci(560.0, 1.0, np.zeros(3), np.zeros(4))


class TestCoverage:
    def test_single_satellite_covers_fraction(self):
        positions = circular_positions_eci(
            560.0, math.radians(0.0), np.array([0.0]), np.array([0.0])
        )
        half_angle = coverage_half_angle_rad(560.0, 25.0)
        fraction = coverage_fraction(positions, half_angle, grid_step_deg=5.0)
        assert 0.0 < fraction < 0.05

    def test_many_satellites_cover_more(self):
        wd_small = WalkerDelta(1200.0, 80.0, total_satellites=40, planes=5, phasing=1)
        wd_large = WalkerDelta(1200.0, 80.0, total_satellites=200, planes=10, phasing=1)
        half_angle = coverage_half_angle_rad(1200.0, 25.0)

        def fraction(wd):
            raan, phase = wd.raan_and_phase_rad()
            positions = circular_positions_eci(
                wd.altitude_km, math.radians(wd.inclination_deg), raan, phase
            )
            return coverage_fraction(positions, half_angle, grid_step_deg=6.0)

        assert fraction(wd_large) > fraction(wd_small)

    def test_continuous_coverage_check(self):
        # A generously sized constellation passes; a tiny one fails.
        big = WalkerDelta(1215.0, 65.0, total_satellites=300, planes=15, phasing=1)
        tiny = WalkerDelta(1215.0, 65.0, total_satellites=30, planes=5, phasing=1)
        assert is_continuously_covered(big, 25.0, grid_step_deg=8.0, time_samples=4)
        assert not is_continuously_covered(tiny, 25.0, grid_step_deg=8.0, time_samples=4)


class TestSizing:
    def test_streets_of_coverage_seed(self):
        planes, per_plane = streets_of_coverage_size(1215.0, 65.0, 25.0)
        assert planes >= 5
        assert per_plane >= 10

    def test_minimum_walker_1215_km(self):
        wd = minimum_walker_for_coverage(1215.0, 65.0, 25.0, grid_step_deg=6.0, time_samples=5)
        # The paper quotes >= 200 satellites for uniform coverage at 1215 km;
        # our numerical sizing lands in the 120-260 range depending on the
        # latitude band required -- the important invariant is the magnitude.
        assert 100 <= wd.total_satellites <= 300

    def test_minimum_walker_decreases_with_altitude(self):
        low = minimum_walker_for_coverage(600.0, 65.0, 25.0, grid_step_deg=6.0, time_samples=5)
        high = minimum_walker_for_coverage(1600.0, 65.0, 25.0, grid_step_deg=6.0, time_samples=5)
        assert high.total_satellites < low.total_satellites

    def test_result_actually_covers(self):
        wd = minimum_walker_for_coverage(1215.0, 65.0, 25.0, grid_step_deg=6.0, time_samples=5)
        assert is_continuously_covered(wd, 25.0, grid_step_deg=6.0, time_samples=5)
