"""Tests of repeat-ground-track coverage analysis (Figure 1 machinery)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.constants import EARTH_RADIUS_KM
from repro.coverage.rgt_coverage import (
    RGTTrain,
    analytic_satellites_for_track_coverage,
    ground_track_rate_rad_s,
    provides_uniform_coverage,
    required_street_half_width_rad,
    satellites_to_cover_track,
    swath_sample_points,
    train_covers_region,
)
from repro.coverage.walker import minimum_walker_for_coverage
from repro.orbits.repeat_ground_track import enumerate_leo_repeat_ground_tracks


@pytest.fixture(scope="module")
def tracks():
    return enumerate_leo_repeat_ground_tracks(65.0, 400.0, 2000.0)


class TestRGTTrain:
    def test_elements_share_track_geometry(self, tracks):
        train = RGTTrain(track=tracks[0], count=8)
        elements = train.satellite_elements()
        assert len(elements) == 8
        assert all(e.altitude_km == pytest.approx(tracks[0].altitude_km) for e in elements)

    def test_positions_radius(self, tracks):
        train = RGTTrain(track=tracks[0], count=5)
        positions = train.positions_eci(0.3)
        radii = np.linalg.norm(positions, axis=1)
        np.testing.assert_allclose(radii, EARTH_RADIUS_KM + tracks[0].altitude_km)

    def test_count_validation(self, tracks):
        with pytest.raises(ValueError):
            RGTTrain(track=tracks[0], count=0)

    def test_raan_offsets_cancel_earth_rotation(self, tracks):
        # Successive satellites are staggered in RAAN by days/count of a turn.
        track = tracks[0]
        train = RGTTrain(track=track, count=10)
        raan, _ = train.raan_and_phase_rad()
        delta = (raan[0] - raan[1]) % (2.0 * math.pi)
        assert delta == pytest.approx(2.0 * math.pi * track.days / 10, abs=1e-9)


class TestTrackRates:
    def test_ground_track_rate_below_orbital_rate(self, tracks):
        for track in tracks:
            orbital_rate = track.elements.mean_motion_rad_s
            assert 0.8 * orbital_rate < ground_track_rate_rad_s(track) < orbital_rate

    def test_analytic_lower_bound_scales_with_revolutions(self, tracks):
        counts = {t.revolutions: analytic_satellites_for_track_coverage(t) for t in tracks}
        assert counts[15] > counts[12]


class TestSizing:
    def test_uniform_classification(self, tracks):
        flags = {t.revolutions: provides_uniform_coverage(t) for t in tracks}
        # Only the lowest-altitude LEO repeat tracks fail to merge into
        # uniform coverage (Section 2.2: "only three of the possible RGTs").
        assert flags[15] is False
        assert flags[12] is True and flags[13] is True

    def test_street_width_capped_by_footprint(self, tracks):
        for track in tracks:
            street = required_street_half_width_rad(track)
            from repro.coverage.footprint import coverage_half_angle_rad

            assert street <= 0.95 * coverage_half_angle_rad(track.altitude_km, 25.0) + 1e-12

    def test_rgt_needs_more_than_walker(self, tracks):
        # The paper's headline point for Figure 1: covering even a single RGT
        # requires more satellites than a minimal uniform-coverage Walker.
        track = next(t for t in tracks if t.revolutions == 13)
        rgt_count = satellites_to_cover_track(track)
        walker = minimum_walker_for_coverage(
            track.altitude_km, 65.0, 25.0, grid_step_deg=6.0, time_samples=5
        )
        assert rgt_count > walker.total_satellites

    def test_count_monotone_with_swath_fraction(self, tracks):
        track = next(t for t in tracks if t.revolutions == 15)
        assert satellites_to_cover_track(track, swath_fraction=0.9) <= satellites_to_cover_track(
            track, swath_fraction=0.97
        )

    def test_invalid_swath_fraction(self, tracks):
        with pytest.raises(ValueError):
            required_street_half_width_rad(tracks[0], swath_fraction=1.5)


class TestSimulationCheck:
    def test_sized_train_covers_its_street(self, tracks):
        # The analytic sizing should pass the independent simulation check.
        track = next(t for t in tracks if t.revolutions == 12)
        count = satellites_to_cover_track(track)
        train = RGTTrain(track=track, count=count)
        assert train_covers_region(
            train, grid_step_deg=6.0, samples_per_rev=60, time_samples=4
        )

    def test_severely_undersized_train_fails(self, tracks):
        track = next(t for t in tracks if t.revolutions == 12)
        train = RGTTrain(track=track, count=12)
        assert not train_covers_region(
            train, grid_step_deg=6.0, samples_per_rev=60, time_samples=4
        )

    def test_swath_points_near_track(self, tracks):
        track = next(t for t in tracks if t.revolutions == 15)
        points = swath_sample_points(track, grid_step_deg=6.0, samples_per_rev=45)
        assert points.shape[1] == 3
        # The 15:1 track does not cover the whole globe, so the swath is a
        # strict subset of the full grid.
        assert 0 < points.shape[0] < (180 // 6) * (360 // 6)
