"""Tests of the latitude/longitude and latitude/local-time grids."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.constants import EARTH_MEAN_RADIUS_KM
from repro.coverage.grid import LatLocalTimeGrid, LatLonGrid


class TestLatLonGrid:
    def test_shape(self):
        grid = LatLonGrid(resolution_deg=0.5)
        assert grid.values.shape == (360, 720)
        assert grid.latitudes_deg[0] == pytest.approx(-89.75)
        assert grid.longitudes_deg[-1] == pytest.approx(179.75)

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            LatLonGrid(resolution_deg=0.7)

    def test_fractional_resolutions_accepted(self):
        # Regression: float modulo made 180.0 % 0.1 come out near 0.1, so
        # evenly dividing fractional resolutions were wrongly rejected.
        grid = LatLonGrid(resolution_deg=0.1)
        assert grid.values.shape == (1800, 3600)
        assert LatLonGrid(resolution_deg=0.25).values.shape == (720, 1440)

    def test_values_shape_checked(self):
        with pytest.raises(ValueError):
            LatLonGrid(resolution_deg=1.0, values=np.zeros((10, 10)))

    def test_total_cell_area_is_earth_surface(self):
        grid = LatLonGrid(resolution_deg=5.0)
        total = grid.cell_area_km2().sum()
        expected = 4.0 * np.pi * EARTH_MEAN_RADIUS_KM**2
        assert total == pytest.approx(expected, rel=1e-9)

    @given(
        st.floats(min_value=-90.0, max_value=90.0),
        st.floats(min_value=-360.0, max_value=360.0),
    )
    def test_index_in_bounds(self, lat, lon):
        grid = LatLonGrid(resolution_deg=2.0)
        row, col = grid.index_of(lat, lon)
        assert 0 <= row < grid.n_lat
        assert 0 <= col < grid.n_lon

    def test_add_and_read_back(self):
        grid = LatLonGrid(resolution_deg=1.0)
        grid.add_at(48.85, 2.35, 7.5)
        assert grid.value_at(48.85, 2.35) == pytest.approx(7.5)
        assert grid.value_at(-48.85, 2.35) == 0.0

    def test_max_over_longitude(self):
        grid = LatLonGrid(resolution_deg=10.0)
        grid.add_at(45.0, 100.0, 3.0)
        grid.add_at(45.0, -100.0, 5.0)
        row, _ = grid.index_of(45.0, 0.0)
        assert grid.max_over_longitude()[row] == 5.0

    def test_copy_is_independent(self):
        grid = LatLonGrid(resolution_deg=10.0)
        other = grid.copy()
        other.add_at(0.0, 0.0, 1.0)
        assert grid.total() == 0.0


class TestLatLocalTimeGrid:
    def test_shape(self):
        grid = LatLocalTimeGrid(lat_resolution_deg=2.0, time_resolution_hours=1.0)
        assert grid.values.shape == (90, 24)
        assert grid.local_times_hours[0] == pytest.approx(0.5)

    def test_invalid_resolutions(self):
        with pytest.raises(ValueError):
            LatLocalTimeGrid(lat_resolution_deg=7.0, time_resolution_hours=1.0)
        with pytest.raises(ValueError):
            LatLocalTimeGrid(lat_resolution_deg=2.0, time_resolution_hours=5.0)

    def test_fractional_resolutions_accepted(self):
        # Regression: 24 % 0.1 suffers the same float-modulo failure as the
        # latitude check; both axes must accept evenly dividing fractions.
        grid = LatLocalTimeGrid(lat_resolution_deg=0.1, time_resolution_hours=0.1)
        assert grid.values.shape == (1800, 240)

    def test_index_wraps_time(self):
        grid = LatLocalTimeGrid(lat_resolution_deg=2.0, time_resolution_hours=1.0)
        assert grid.index_of(0.0, 24.5) == grid.index_of(0.0, 0.5)

    def test_peak(self):
        grid = LatLocalTimeGrid(lat_resolution_deg=2.0, time_resolution_hours=1.0)
        row, col = grid.index_of(35.0, 20.5)
        grid.values[row, col] = 42.0
        peak_lat, peak_time, peak_value = grid.peak()
        assert peak_value == 42.0
        assert peak_lat == pytest.approx(35.0, abs=1.0)
        assert peak_time == pytest.approx(20.5, abs=0.5)

    def test_subtract_clamped(self):
        grid = LatLocalTimeGrid(lat_resolution_deg=30.0, time_resolution_hours=12.0)
        grid.values[:] = 0.5
        grid.subtract_clamped(np.ones_like(grid.values))
        assert grid.total() == 0.0

    def test_subtract_clamped_shape_mismatch(self):
        grid = LatLocalTimeGrid(lat_resolution_deg=30.0, time_resolution_hours=12.0)
        with pytest.raises(ValueError):
            grid.subtract_clamped(np.ones((2, 2)))

    def test_copy_independent(self):
        grid = LatLocalTimeGrid(lat_resolution_deg=30.0, time_resolution_hours=12.0)
        copy = grid.copy()
        copy.values[:] = 9.0
        assert grid.total() == 0.0
