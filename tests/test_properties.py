"""Cross-cutting property-based tests of core invariants.

These complement the per-module suites with randomized checks (hypothesis) of
the invariants the design pipeline relies on: footprint geometry, grid
indexing, demand normalisation, sun-synchronous geometry and the conservation
properties of the greedy covering step.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import EARTH_RADIUS_KM
from repro.coverage.footprint import coverage_half_angle_rad, slant_range_km
from repro.coverage.grid import LatLocalTimeGrid
from repro.coverage.walker import WalkerDelta, circular_positions_eci
from repro.core.ssplane import SSPlane
from repro.demand.diurnal import DiurnalProfile
from repro.orbits.sunsync import sun_synchronous_inclination_rad


class TestFootprintProperties:
    @given(
        st.floats(min_value=300.0, max_value=2000.0),
        st.floats(min_value=5.0, max_value=60.0),
    )
    def test_half_angle_bounded_by_horizon(self, altitude, elevation):
        half_angle = coverage_half_angle_rad(altitude, elevation)
        horizon = math.acos(EARTH_RADIUS_KM / (EARTH_RADIUS_KM + altitude))
        assert 0.0 < half_angle < horizon

    @given(
        st.floats(min_value=300.0, max_value=2000.0),
        st.floats(min_value=5.0, max_value=60.0),
    )
    def test_slant_range_between_altitude_and_horizon_distance(self, altitude, elevation):
        slant = slant_range_km(altitude, elevation)
        horizon_distance = math.sqrt((EARTH_RADIUS_KM + altitude) ** 2 - EARTH_RADIUS_KM**2)
        assert altitude - 1e-6 <= slant <= horizon_distance + 1e-6


class TestGridProperties:
    @given(
        st.floats(min_value=-90.0, max_value=90.0),
        st.floats(min_value=-48.0, max_value=48.0),
    )
    def test_lat_time_index_round_trip(self, latitude, local_time):
        grid = LatLocalTimeGrid(lat_resolution_deg=3.0, time_resolution_hours=1.0)
        row, col = grid.index_of(latitude, local_time)
        centre_lat = grid.latitudes_deg[row]
        centre_time = grid.local_times_hours[col]
        assert abs(centre_lat - latitude) <= grid.lat_resolution_deg / 2.0 + 1e-9
        wrapped = abs((local_time % 24.0) - centre_time)
        assert min(wrapped, 24.0 - wrapped) <= grid.time_resolution_hours / 2.0 + 1e-9

    @given(st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=4, max_size=4))
    def test_subtract_clamped_never_negative(self, values):
        grid = LatLocalTimeGrid(lat_resolution_deg=90.0, time_resolution_hours=12.0)
        grid.values = np.array(values).reshape(2, 2)
        grid.subtract_clamped(np.full((2, 2), 10.0))
        assert np.all(grid.values >= 0.0)


class TestDiurnalProperties:
    @given(st.floats(min_value=-100.0, max_value=100.0))
    def test_profile_periodic(self, hour):
        profile = DiurnalProfile()
        assert profile.fraction_of_median(hour) == pytest.approx(
            profile.fraction_of_median(hour + 24.0), rel=1e-9
        )

    @given(
        st.lists(
            st.floats(min_value=10.0, max_value=500.0), min_size=24, max_size=24
        )
    )
    def test_arbitrary_tables_normalise_to_unit_median(self, table):
        profile = DiurnalProfile(hourly_percent=tuple(table))
        hours = np.linspace(0.0, 24.0, 960, endpoint=False)
        assert float(np.median(profile.fraction_of_median(hours))) == pytest.approx(
            1.0, abs=0.05
        )


class TestOrbitProperties:
    @given(st.floats(min_value=250.0, max_value=2500.0))
    @settings(max_examples=20)
    def test_sun_synchronous_inclination_range(self, altitude):
        inclination = sun_synchronous_inclination_rad(altitude)
        assert math.pi / 2.0 < inclination < math.radians(115.0)

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=4, max_value=12),
    )
    @settings(max_examples=20)
    def test_walker_positions_on_sphere(self, planes, per_plane):
        constellation = WalkerDelta(
            altitude_km=700.0,
            inclination_deg=60.0,
            total_satellites=planes * per_plane,
            planes=planes,
            phasing=0,
        )
        raan, phase = constellation.raan_and_phase_rad()
        positions = circular_positions_eci(700.0, math.radians(60.0), raan, phase)
        radii = np.linalg.norm(positions, axis=1)
        np.testing.assert_allclose(radii, EARTH_RADIUS_KM + 700.0, rtol=1e-12)


class TestSSPlaneProperties:
    @given(st.floats(min_value=0.0, max_value=23.999))
    @settings(max_examples=20)
    def test_coverage_mask_contains_node_column(self, ltan):
        grid = LatLocalTimeGrid(lat_resolution_deg=6.0, time_resolution_hours=2.0)
        plane = SSPlane(altitude_km=560.0, ltan_hours=ltan, satellite_count=25)
        mask = plane.coverage_mask(grid)
        row, col = grid.index_of(0.0, ltan)
        assert mask[row, col]
        # The mask is symmetric in demand terms: it always covers some cells
        # but never the whole grid (an SS-plane is not global coverage).
        assert 0 < mask.sum() < mask.size
