"""Tests of the demand-driven Walker-delta baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coverage.grid import LatLocalTimeGrid
from repro.core.walker_baseline import DemandDrivenWalkerDesigner


def _empty_grid() -> LatLocalTimeGrid:
    return LatLocalTimeGrid(lat_resolution_deg=4.0, time_resolution_hours=2.0)


@pytest.fixture(scope="module")
def designer() -> DemandDrivenWalkerDesigner:
    return DemandDrivenWalkerDesigner(altitude_km=560.0, min_elevation_deg=25.0)


class TestWalkerBaseline:
    def test_empty_demand(self, designer):
        result = designer.design(_empty_grid())
        assert result.shell_count == 0
        assert result.total_satellites == 0
        assert result.satisfied

    def test_single_unit_demand_needs_one_shell(self, designer):
        grid = _empty_grid()
        row, col = grid.index_of(34.0, 21.0)
        grid.values[row, col] = 1.0
        result = designer.design(grid)
        assert result.satisfied
        assert result.shell_count == 1
        shell = result.shells[0]
        # The shell's inclination must reach the demanded latitude.
        assert shell.inclination_deg >= 34.0
        assert shell.satellite_count > 50

    def test_shell_count_tracks_peak_demand(self, designer):
        grid = _empty_grid()
        row, col = grid.index_of(34.0, 21.0)
        grid.values[row, col] = 4.0
        result = designer.design(grid)
        assert result.shell_count == 4

    def test_high_latitude_demand_gets_high_inclination(self, designer):
        grid = _empty_grid()
        row, col = grid.index_of(62.0, 21.0)
        grid.values[row, col] = 1.0
        result = designer.design(grid)
        assert result.shells[0].inclination_deg >= 62.0

    def test_supply_is_time_invariant(self, designer):
        # Demand at a quiet hour costs exactly as much as at the peak hour:
        # a Walker shell cannot target a local time.
        late = _empty_grid()
        row, col = late.index_of(34.0, 3.0)
        late.values[row, col] = 2.0
        peak = _empty_grid()
        row, col = peak.index_of(34.0, 21.0)
        peak.values[row, col] = 2.0
        assert (
            designer.design(late).total_satellites
            == designer.design(peak).total_satellites
        )

    def test_demand_floor(self, designer):
        grid = _empty_grid()
        row, col = grid.index_of(34.0, 21.0)
        grid.values[row, col] = designer.demand_floor / 5.0
        assert designer.design(grid).shell_count == 0

    def test_altitudes_stay_near_base(self, designer):
        grid = _empty_grid()
        row, col = grid.index_of(34.0, 21.0)
        grid.values[row, col] = 7.0
        result = designer.design(grid)
        altitudes = [shell.altitude_km for shell in result.shells]
        assert max(altitudes) - min(altitudes) <= designer.altitude_spacing_km * (
            designer.altitude_slots
        )
        assert all(abs(a - designer.altitude_km) <= 50.0 for a in altitudes)

    def test_input_not_mutated(self, designer):
        grid = _empty_grid()
        row, col = grid.index_of(34.0, 21.0)
        grid.values[row, col] = 2.0
        before = grid.values.copy()
        designer.design(grid)
        np.testing.assert_array_equal(grid.values, before)

    def test_max_shells_bound(self):
        bounded = DemandDrivenWalkerDesigner(altitude_km=560.0, max_shells=1)
        grid = _empty_grid()
        row, col = grid.index_of(34.0, 21.0)
        grid.values[row, col] = 5.0
        result = bounded.design(grid)
        assert result.shell_count == 1
        assert not result.satisfied
