"""Tests of the SS-plane primitive."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.coverage.grid import LatLocalTimeGrid
from repro.core.ssplane import SSPlane, plane_local_time_offset_hours, satellites_per_plane
from repro.orbits.sunsync import sun_synchronous_inclination_deg


@pytest.fixture()
def grid() -> LatLocalTimeGrid:
    return LatLocalTimeGrid(lat_resolution_deg=2.0, time_resolution_hours=1.0)


class TestSatellitesPerPlane:
    def test_typical_count_at_560_km(self):
        count = satellites_per_plane(560.0, 25.0)
        assert 20 <= count <= 35

    def test_more_satellites_at_lower_altitude(self):
        assert satellites_per_plane(400.0, 25.0) > satellites_per_plane(1200.0, 25.0)

    def test_wider_street_needs_more_satellites(self):
        assert satellites_per_plane(560.0, 25.0, 0.8) > satellites_per_plane(560.0, 25.0, 0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            satellites_per_plane(560.0, 25.0, street_half_width_fraction=1.2)


class TestLocalTimeOffset:
    def test_equator_has_zero_offset(self):
        inclination = math.radians(97.6)
        assert plane_local_time_offset_hours(0.0, inclination) == pytest.approx(0.0)

    def test_ascending_descending_symmetric(self):
        inclination = math.radians(97.6)
        latitude = math.radians(40.0)
        ascending = plane_local_time_offset_hours(latitude, inclination, ascending=True)
        descending = plane_local_time_offset_hours(latitude, inclination, ascending=False)
        # The two branches sit symmetrically around the 12-hour opposite node.
        assert ascending != pytest.approx(descending)
        assert (ascending + descending) % 24.0 == pytest.approx(12.0, abs=1e-6)

    def test_unreachable_latitude_raises(self):
        with pytest.raises(ValueError):
            plane_local_time_offset_hours(math.radians(89.0), math.radians(97.6))

    def test_equatorial_orbit_rejected(self):
        with pytest.raises(ValueError):
            plane_local_time_offset_hours(0.1, 0.0)


class TestSSPlane:
    def test_inclination_is_sun_synchronous(self):
        plane = SSPlane(altitude_km=560.0, ltan_hours=10.5, satellite_count=25)
        assert plane.inclination_deg == pytest.approx(
            sun_synchronous_inclination_deg(560.0)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            SSPlane(altitude_km=560.0, ltan_hours=25.0, satellite_count=25)
        with pytest.raises(ValueError):
            SSPlane(altitude_km=560.0, ltan_hours=10.0, satellite_count=0)

    def test_satellite_elements_spread_in_phase(self):
        plane = SSPlane(altitude_km=560.0, ltan_hours=12.0, satellite_count=10)
        elements = plane.satellite_elements()
        assert len(elements) == 10
        anomalies = sorted(e.true_anomaly_rad for e in elements)
        gaps = np.diff(anomalies)
        np.testing.assert_allclose(gaps, 2.0 * math.pi / 10, atol=1e-9)

    def test_path_passes_through_ltan_at_equator(self, grid):
        plane = SSPlane(altitude_km=560.0, ltan_hours=14.0, satellite_count=25)
        ascending, descending = plane.path_local_time_hours(np.array([0.0]))
        assert ascending[0] == pytest.approx(14.0, abs=1e-6)
        assert descending[0] == pytest.approx(2.0, abs=1e-6)

    def test_path_nan_beyond_reach(self):
        plane = SSPlane(altitude_km=560.0, ltan_hours=14.0, satellite_count=25)
        ascending, _ = plane.path_local_time_hours(np.array([math.radians(89.0)]))
        assert np.isnan(ascending[0])

    def test_coverage_mask_contains_node_cell(self, grid):
        plane = SSPlane(altitude_km=560.0, ltan_hours=20.5, satellite_count=25)
        mask = plane.coverage_mask(grid)
        row, col = grid.index_of(0.0, 20.5)
        assert mask[row, col]

    def test_coverage_mask_excludes_opposite_time_at_equator(self, grid):
        plane = SSPlane(altitude_km=560.0, ltan_hours=20.5, satellite_count=25)
        mask = plane.coverage_mask(grid)
        row, col = grid.index_of(0.0, 14.5)
        assert not mask[row, col]

    def test_coverage_beyond_turnaround_limited_to_turnaround_time(self, grid):
        plane = SSPlane(altitude_km=560.0, ltan_hours=20.5, satellite_count=25)
        mask = plane.coverage_mask(grid)
        # 84 degrees is beyond the orbit's 82.4-degree reach but within the
        # street width of the northern turnaround (local time LTAN - 6 h for a
        # retrograde orbit); the opposite local time must remain uncovered.
        row = grid.index_of(84.0, 0.0)[0]
        turn_col = grid.index_of(84.0, (20.5 - 6.0) % 24.0)[1]
        opposite_col = grid.index_of(84.0, (20.5 + 6.0) % 24.0)[1]
        assert mask[row, turn_col]
        assert not mask[row, opposite_col]
        # Far beyond the street the row is entirely uncovered.
        polar_row = grid.index_of(89.0, 0.0)[0]
        assert not mask[polar_row, :].any()

    def test_covers_helper(self, grid):
        plane = SSPlane(altitude_km=560.0, ltan_hours=6.0, satellite_count=25)
        assert plane.covers(0.0, 6.0, grid)
        assert not plane.covers(0.0, 12.0, grid)
