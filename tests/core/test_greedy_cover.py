"""Tests of the greedy SS-plane covering algorithm (Section 4.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coverage.grid import LatLocalTimeGrid
from repro.core.greedy_cover import GreedySSPlaneDesigner


def _empty_grid() -> LatLocalTimeGrid:
    return LatLocalTimeGrid(lat_resolution_deg=4.0, time_resolution_hours=1.0)


@pytest.fixture()
def designer() -> GreedySSPlaneDesigner:
    return GreedySSPlaneDesigner(altitude_km=560.0, min_elevation_deg=25.0)


class TestGreedyCover:
    def test_empty_demand_needs_no_planes(self, designer):
        result = designer.design(_empty_grid())
        assert result.plane_count == 0
        assert result.total_satellites == 0
        assert result.satisfied

    def test_single_cell_demand(self, designer):
        grid = _empty_grid()
        row, col = grid.index_of(34.0, 20.5)
        grid.values[row, col] = 3.0
        result = designer.design(grid)
        assert result.satisfied
        # Three units of demand at one cell need exactly three planes.
        assert result.plane_count == 3
        assert result.total_satellites == 3 * designer.satellites_per_plane()

    def test_planes_pass_through_demand_cell(self, designer):
        grid = _empty_grid()
        row, col = grid.index_of(34.0, 20.5)
        grid.values[row, col] = 2.0
        result = designer.design(grid)
        for plane in result.planes:
            assert plane.coverage_mask(grid)[row, col]

    def test_demand_spread_over_time_needs_multiple_ltans(self, designer):
        grid = _empty_grid()
        for hour in (2.5, 8.5, 14.5, 20.5):
            row, col = grid.index_of(30.0, hour)
            grid.values[row, col] = 1.0
        result = designer.design(grid)
        assert result.satisfied
        assert result.plane_count >= 2
        assert len(set(round(l, 3) for l in result.ltans_hours())) >= 2

    def test_demand_does_not_mutate_input(self, designer):
        grid = _empty_grid()
        row, col = grid.index_of(34.0, 20.5)
        grid.values[row, col] = 2.0
        before = grid.values.copy()
        designer.design(grid)
        np.testing.assert_array_equal(grid.values, before)

    def test_below_floor_demand_ignored(self, designer):
        grid = _empty_grid()
        row, col = grid.index_of(34.0, 20.5)
        grid.values[row, col] = designer.demand_floor / 10.0
        result = designer.design(grid)
        assert result.plane_count == 0
        assert result.satisfied

    def test_more_demand_needs_no_fewer_planes(self, designer):
        low = _empty_grid()
        high = _empty_grid()
        for hour in range(24):
            row, col = low.index_of(30.0, hour + 0.5)
            low.values[row, col] = 1.0
            high.values[row, col] = 3.0
        assert (
            designer.design(high).plane_count >= designer.design(low).plane_count
        )

    def test_max_planes_bound_respected(self):
        bounded = GreedySSPlaneDesigner(altitude_km=560.0, max_planes=2)
        grid = _empty_grid()
        row, col = grid.index_of(34.0, 20.5)
        grid.values[row, col] = 10.0
        result = bounded.design(grid)
        assert result.plane_count == 2
        assert not result.satisfied
        assert result.residual_demand > 0.0
