"""Integration tests of the high-level designer, metrics and comparison sweep.

These are the tests that check the paper's evaluation-level claims end to end
on small/coarse instances (the benchmarks run the full-size versions).
"""

from __future__ import annotations

import pytest

from repro.core.comparison import run_comparison_sweep
from repro.core.designer import ConstellationDesigner
from repro.core.metrics import MetricsCalculator
from repro.core.rgt_baseline import rgt_vs_walker_sweep
from repro.demand.spatiotemporal import SpatiotemporalDemandModel
from repro.radiation.exposure import ExposureCalculator


@pytest.fixture(scope="module")
def coarse_designer(population_grid_1deg_module=None):
    from repro.demand.population import synthetic_population_grid

    model = SpatiotemporalDemandModel(
        population=synthetic_population_grid(resolution_deg=2.0)
    )
    return ConstellationDesigner(
        demand_model=model,
        lat_resolution_deg=4.0,
        time_resolution_hours=2.0,
        metrics_calculator=MetricsCalculator(exposure=ExposureCalculator(step_s=180.0)),
    )


class TestConstellationDesigner:
    def test_demand_grid_scaling(self, coarse_designer):
        grid = coarse_designer.demand_grid(25.0)
        assert grid.values.max() == pytest.approx(25.0)

    def test_ss_design_satisfies_demand(self, coarse_designer):
        outcome = coarse_designer.design_ssplane(5.0)
        assert outcome.metrics.satisfied
        assert outcome.metrics.total_satellites > 0
        assert outcome.metrics.design == "ss-plane"

    def test_walker_design_satisfies_demand(self, coarse_designer):
        outcome = coarse_designer.design_walker(5.0)
        assert outcome.metrics.satisfied
        assert outcome.metrics.total_satellites > 0
        assert outcome.metrics.design == "walker"

    def test_ss_uses_fewer_satellites_than_walker(self, coarse_designer):
        # The paper's Figure 9 headline: SS-plane designs need fewer
        # satellites than the Walker baseline at the same demand.
        ss, walker = coarse_designer.design_both(5.0)
        assert ss.total_satellites < walker.total_satellites

    def test_ss_radiation_below_walker(self, coarse_designer):
        # The paper's Figure 10 headline: lower median radiation for SS.
        ss, walker = coarse_designer.design_both(5.0)
        assert ss.metrics.median_electron_fluence < walker.metrics.median_electron_fluence
        assert ss.metrics.median_proton_fluence < walker.metrics.median_proton_fluence

    def test_satellite_counts_grow_with_demand(self, coarse_designer):
        small_ss = coarse_designer.design_ssplane(3.0).total_satellites
        large_ss = coarse_designer.design_ssplane(12.0).total_satellites
        assert large_ss > small_ss

    def test_advantage_shrinks_as_demand_grows(self, coarse_designer):
        # Figure 9: the SS advantage is largest at low demand and shrinks as
        # the demand grid saturates.
        low_ss, low_wd = coarse_designer.design_both(3.0)
        high_ss, high_wd = coarse_designer.design_both(30.0)
        low_ratio = low_wd.total_satellites / low_ss.total_satellites
        high_ratio = high_wd.total_satellites / high_ss.total_satellites
        assert low_ratio > high_ratio


class TestComparisonSweep:
    def test_sweep_points_and_claims(self, coarse_designer):
        sweep = run_comparison_sweep((3.0, 10.0), designer=coarse_designer)
        assert len(sweep.points) == 2
        claims = sweep.headline_claims()
        assert claims.max_satellite_reduction_factor > 1.0
        assert claims.max_electron_reduction_percent > 0.0
        assert claims.max_proton_reduction_percent > 0.0

    def test_empty_sweep_rejected(self):
        from repro.core.comparison import ComparisonSweep

        with pytest.raises(ValueError):
            ComparisonSweep().headline_claims()


class TestRGTBaseline:
    def test_figure1_ordering(self):
        points = rgt_vs_walker_sweep(
            inclination_deg=65.0,
            min_altitude_km=1000.0,
            max_altitude_km=1700.0,
            walker_grid_step_deg=6.0,
            walker_time_samples=5,
        )
        assert len(points) >= 2
        # Covering a single RGT is never cheaper than the Walker baseline.
        for point in points:
            assert point.rgt_worse or point.rgt_satellites == point.walker_satellites
