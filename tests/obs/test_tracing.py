"""Tests of the Tracer: spans, disabled discipline, thread safety."""

from __future__ import annotations

import threading

import pytest

from repro.obs import NULL_TRACER, STAGES, Tracer


class FakeClock:
    """Deterministic monotonic clock: each read advances by ``tick``."""

    def __init__(self, tick: float = 1.0) -> None:
        self.now = 0.0
        self.tick = tick

    def __call__(self) -> float:
        value = self.now
        self.now += self.tick
        return value


class TestSpans:
    def test_span_records_clock_delta(self):
        tracer = Tracer(clock=FakeClock(tick=0.25))
        with tracer.span("routing") as span:
            pass
        assert span.seconds == pytest.approx(0.25)
        index = tracer.metrics.stage_index("routing")
        assert tracer.metrics.stage_seconds[index] == pytest.approx(0.25)
        assert tracer.metrics.stage_calls[index] == 1

    def test_spans_nest_independently(self):
        clock = FakeClock(tick=1.0)
        tracer = Tracer(clock=clock)
        with tracer.span("allocation"):  # reads at t=0, exits at t=3
            with tracer.span("routing"):  # reads at t=1, exits at t=2
                pass
        means = tracer.stage_means()
        assert means["routing"] == pytest.approx(1.0)
        # The outer span covers the inner one plus its own clock reads.
        assert means["allocation"] == pytest.approx(3.0)

    def test_span_records_even_when_body_raises(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("routing"):
                raise RuntimeError("stage failed")
        assert tracer.metrics.stage_calls[tracer.metrics.stage_index("routing")] == 1

    def test_unknown_stage_raises_before_timing(self):
        with pytest.raises(KeyError):
            Tracer().span("warp_drive")

    def test_record_seconds_is_one_synthetic_span(self):
        tracer = Tracer()
        tracer.record_seconds("snapshot", 0.5)
        index = tracer.metrics.stage_index("snapshot")
        assert tracer.metrics.stage_seconds[index] == pytest.approx(0.5)
        assert tracer.metrics.stage_calls[index] == 1

    def test_custom_stage_vocabulary(self):
        tracer = Tracer(stages=("fig01", "fig02"))
        with tracer.span("fig01"):
            pass
        assert tracer.metrics.stages == ("fig01", "fig02")
        assert tracer.metrics.stage_calls[0] == 1


class TestDisabled:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False, clock=FakeClock())
        with tracer.span("routing") as span:
            pass
        tracer.record_seconds("routing", 9.0)
        tracer.counter("steps")
        tracer.gauge("bytes", 1.0)
        assert span.seconds == 0.0
        assert tracer.metrics.total_seconds() == 0.0
        assert tracer.metrics.stage_calls.sum() == 0
        assert tracer.metrics.counters == {}
        assert tracer.metrics.gauges == {}

    def test_disabled_span_is_shared_and_reusable(self):
        # The whole point of the null path: no per-span allocation.
        assert NULL_TRACER.enabled is False
        first = NULL_TRACER.span("routing")
        second = NULL_TRACER.span("allocation")
        assert first is second

    def test_null_tracer_accepts_any_stage_name(self):
        # Disabled spans skip the vocabulary lookup entirely, so call sites
        # never pay (or fail) for stages the tracer does not know.
        with NULL_TRACER.span("not_a_stage"):
            pass
        assert NULL_TRACER.metrics.stage_calls.sum() == 0


class TestThreadSafety:
    def test_concurrent_spans_lose_no_counts(self):
        tracer = Tracer()
        spans_per_thread = 200

        def worker(stage: str) -> None:
            for _ in range(spans_per_thread):
                with tracer.span(stage):
                    pass
                tracer.counter("steps")

        threads = [
            threading.Thread(target=worker, args=(STAGES[i % len(STAGES)],))
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert int(tracer.metrics.stage_calls.sum()) == 8 * spans_per_thread
        assert int(tracer.metrics.stage_histogram.sum()) == 8 * spans_per_thread
        assert tracer.metrics.counters["steps"] == 8 * spans_per_thread
