"""Tests of the OBS_EXPORTERS registry and its three renderers."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import (
    OBS_EXPORTERS,
    Exporter,
    JsonExporter,
    NullExporter,
    RunMetrics,
    TableExporter,
    get_exporter,
)


@pytest.fixture()
def metrics() -> RunMetrics:
    metrics = RunMetrics()
    metrics.record("routing", 2e-3)
    metrics.record("allocation", 6e-3)
    metrics.increment("steps", 3.0)
    metrics.gauge_max("edge_list_bytes", 4096.0)
    return metrics


class TestRegistry:
    def test_registry_keys_match_declared_names(self):
        assert set(OBS_EXPORTERS) == {"json", "table", "null"}
        for key, exporter in OBS_EXPORTERS.items():
            assert isinstance(exporter, Exporter)
            assert exporter.name == key

    def test_get_exporter_resolves_registry_entries(self):
        for key in OBS_EXPORTERS:
            assert get_exporter(key) is OBS_EXPORTERS[key]

    def test_get_exporter_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match=r"json.*null.*table"):
            get_exporter("csv")


class TestJsonExporter:
    def test_renders_full_document(self, metrics):
        document = json.loads(JsonExporter().render(metrics))
        assert document["stages"]["routing"]["calls"] == 1
        assert document["counters"] == {"steps": 3.0}
        assert document["gauges"] == {"edge_list_bytes": 4096.0}

    def test_compact_indent_off(self, metrics):
        text = JsonExporter(indent=None).render(metrics)
        assert "\n" not in text
        assert json.loads(text)["counters"]["steps"] == 3.0


class TestTableExporter:
    def test_renders_active_stages_counters_and_gauges(self, metrics):
        text = TableExporter().render(metrics)
        assert "routing" in text and "allocation" in text
        assert "snapshot" not in text  # idle stages omitted by default
        assert "counter steps = 3" in text
        assert "gauge edge_list_bytes = 4096" in text

    def test_include_idle_lists_every_stage(self, metrics):
        text = TableExporter(include_idle=True).render(metrics)
        for stage in metrics.stages:
            assert stage in text


class TestNullExporterAndStreams:
    def test_null_renders_empty_and_writes_nothing(self, metrics):
        stream = io.StringIO()
        assert NullExporter().export(metrics, stream) == ""
        assert stream.getvalue() == ""

    def test_export_writes_rendered_text_to_stream(self, metrics):
        stream = io.StringIO()
        text = get_exporter("table").export(metrics, stream)
        assert stream.getvalue() == text + "\n"
