"""Tests of RunMetrics: recording, merge semantics, pickling."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.obs import (
    HISTOGRAM_EDGES,
    STAGES,
    RunMetrics,
    combined_stage_means,
)


class TestRecording:
    def test_fresh_metrics_are_zero(self):
        metrics = RunMetrics()
        assert metrics.stages == STAGES
        assert metrics.stage_seconds.sum() == 0.0
        assert metrics.stage_calls.sum() == 0
        assert metrics.stage_histogram.sum() == 0
        assert metrics.counters == {}
        assert metrics.gauges == {}

    def test_record_accumulates_seconds_calls_and_histogram(self):
        metrics = RunMetrics()
        metrics.record("routing", 1e-3)
        metrics.record("routing", 3e-3)
        index = metrics.stage_index("routing")
        assert metrics.stage_seconds[index] == pytest.approx(4e-3)
        assert metrics.stage_calls[index] == 2
        assert metrics.stage_histogram[index].sum() == 2
        assert metrics.total_seconds() == pytest.approx(4e-3)

    def test_histogram_bins_are_edge_consistent(self):
        metrics = RunMetrics()
        index = metrics.stage_index("routing")
        # Below the first edge, between two edges, above the last edge.
        metrics.record("routing", 1e-9)
        assert metrics.stage_histogram[index, 0] == 1
        metrics.record("routing", float(HISTOGRAM_EDGES[3]) * 1.01)
        assert metrics.stage_histogram[index, 4] == 1
        metrics.record("routing", float(HISTOGRAM_EDGES[-1]) * 10.0)
        assert metrics.stage_histogram[index, -1] == 1

    def test_unknown_stage_raises(self):
        with pytest.raises(ValueError, match="unknown stage"):
            RunMetrics().record("warp_drive", 1.0)

    def test_stage_vocabulary_validated(self):
        with pytest.raises(ValueError):
            RunMetrics(stages=())
        with pytest.raises(ValueError):
            RunMetrics(stages=("a", "a"))

    def test_counters_add_and_gauges_take_max(self):
        metrics = RunMetrics()
        metrics.increment("steps")
        metrics.increment("steps", 2.0)
        metrics.gauge_max("bytes", 100.0)
        metrics.gauge_max("bytes", 40.0)
        assert metrics.counters == {"steps": 3.0}
        assert metrics.gauges == {"bytes": 100.0}


class TestMerge:
    def _sample(self, seed: int) -> RunMetrics:
        rng = np.random.default_rng(seed)
        metrics = RunMetrics()
        for _ in range(50):
            stage = STAGES[int(rng.integers(len(STAGES)))]
            metrics.record(stage, float(rng.uniform(1e-6, 1e-1)))
        metrics.increment("steps", float(rng.integers(1, 10)))
        metrics.gauge_max("bytes", float(rng.integers(1, 10**6)))
        return metrics

    def test_merge_is_elementwise_exact(self):
        a, b = self._sample(1), self._sample(2)
        seconds = a.stage_seconds + b.stage_seconds
        calls = a.stage_calls + b.stage_calls
        histogram = a.stage_histogram + b.stage_histogram
        a.merge(b)
        assert np.array_equal(a.stage_seconds, seconds)
        assert np.array_equal(a.stage_calls, calls)
        assert np.array_equal(a.stage_histogram, histogram)

    def test_merge_is_commutative(self):
        left = self._sample(3)
        left.merge(self._sample(4))
        right = self._sample(4)
        right.merge(self._sample(3))
        # Addition of identical floats in either order is exact here: each
        # accumulator sees the same two operands.
        assert left.equals(right)

    def test_chunked_merge_equals_single_stream(self):
        # Worker-chunked accumulation must reproduce the serial aggregate:
        # the same spans folded through any partition give equal state.
        durations = [(STAGES[i % len(STAGES)], 10.0 ** -(i % 5)) for i in range(30)]
        serial = RunMetrics()
        for stage, seconds in durations:
            serial.record(stage, seconds)
        chunks = [RunMetrics() for _ in range(3)]
        for i, (stage, seconds) in enumerate(durations):
            chunks[i % 3].record(stage, seconds)
        merged = chunks[0]
        merged.merge(chunks[1])
        merged.merge(chunks[2])
        assert np.array_equal(merged.stage_calls, serial.stage_calls)
        assert np.array_equal(merged.stage_histogram, serial.stage_histogram)
        assert merged.stage_seconds == pytest.approx(serial.stage_seconds, abs=0.0, rel=1e-12)

    def test_merge_rejects_mismatched_stages(self):
        with pytest.raises(ValueError, match="stage vocabulary"):
            RunMetrics().merge(RunMetrics(stages=("only",)))

    def test_pickle_roundtrip_preserves_state(self):
        metrics = self._sample(5)
        clone = pickle.loads(pickle.dumps(metrics))
        assert clone.equals(metrics)
        # The clone is independent state, not a view.
        clone.record("routing", 1.0)
        assert not clone.equals(metrics)


class TestSummaries:
    def test_stage_means_and_summary(self):
        metrics = RunMetrics()
        metrics.record("routing", 2e-3)
        metrics.record("routing", 4e-3)
        metrics.record("allocation", 4e-3)
        means = metrics.stage_means()
        assert means["routing"] == pytest.approx(3e-3)
        assert means["snapshot"] == 0.0
        summary = metrics.stage_summary()
        assert summary["routing"]["calls"] == 2
        assert summary["routing"]["mean_ms"] == pytest.approx(3.0)
        assert summary["routing"]["share"] == pytest.approx(0.6)
        assert sum(row["share"] for row in summary.values()) == pytest.approx(1.0)

    def test_to_dict_is_json_shaped(self):
        metrics = RunMetrics()
        metrics.record("routing", 1e-3)
        metrics.increment("steps")
        metrics.gauge_max("bytes", 7.0)
        document = metrics.to_dict()
        assert set(document) == {"stages", "histogram_edges_s", "counters", "gauges"}
        assert document["stages"]["routing"]["calls"] == 1
        assert len(document["histogram_edges_s"]) == HISTOGRAM_EDGES.size
        assert document["counters"] == {"steps": 1.0}
        assert document["gauges"] == {"bytes": 7.0}

    def test_combined_stage_means_pools_calls(self):
        a, b = RunMetrics(), RunMetrics()
        a.record("routing", 1e-3)
        b.record("routing", 3e-3)
        b.record("routing", 3e-3)
        means = combined_stage_means([a, b])
        # (1 + 3 + 3) ms over 3 calls, not the mean of per-run means.
        assert means["routing"] == pytest.approx(7e-3 / 3.0)
        assert means["snapshot"] == 0.0
        assert combined_stage_means([]) == {}
