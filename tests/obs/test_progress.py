"""Tests of ProgressTracker ETA math and the stderr reporter."""

from __future__ import annotations

import io

import pytest

from repro.obs import ProgressEvent, ProgressTracker, StderrProgress


class SteppedClock:
    """Monotonic clock advanced explicitly by the test."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestProgressTracker:
    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            ProgressTracker(total=-1, callback=lambda e: None)
        with pytest.raises(ValueError, match="alpha"):
            ProgressTracker(total=1, callback=lambda e: None, alpha=0.0)
        with pytest.raises(ValueError, match="callable"):
            ProgressTracker(total=1, callback="not-callable")

    def test_constant_rate_eta(self):
        clock = SteppedClock()
        events: list[ProgressEvent] = []
        tracker = ProgressTracker(total=10, callback=events.append, clock=clock)
        for _ in range(5):
            clock.now += 2.0  # 1 cell per 2 s, constant
            tracker.advance(1)
        event = events[-1]
        assert event.completed == 5 and event.total == 10
        assert event.rate_per_s == pytest.approx(0.5)
        assert event.eta_s == pytest.approx(10.0)
        assert event.fraction == pytest.approx(0.5)
        assert event.elapsed_s == pytest.approx(10.0)

    def test_ewma_smooths_rate_changes(self):
        clock = SteppedClock()
        events: list[ProgressEvent] = []
        tracker = ProgressTracker(
            total=100, callback=events.append, alpha=0.3, clock=clock
        )
        clock.now += 1.0
        tracker.advance(1)  # instantaneous 1.0 cells/s seeds the EWMA
        clock.now += 0.1
        tracker.advance(1)  # instantaneous 10 cells/s
        # 0.3 * 10 + 0.7 * 1 = 3.7, not the raw 10.
        assert events[-1].rate_per_s == pytest.approx(3.7)

    def test_eta_is_inf_before_any_rate_and_zero_at_completion(self):
        clock = SteppedClock()
        events: list[ProgressEvent] = []
        tracker = ProgressTracker(total=2, callback=events.append, clock=clock)
        tracker.advance(1)  # zero elapsed time: no rate yet
        assert events[-1].rate_per_s == 0.0
        assert events[-1].eta_s == float("inf")
        clock.now += 1.0
        tracker.advance(1)
        assert events[-1].eta_s == 0.0
        assert events[-1].fraction == pytest.approx(1.0)

    def test_stage_means_ride_along(self):
        events: list[ProgressEvent] = []
        tracker = ProgressTracker(
            total=1, callback=events.append, clock=SteppedClock()
        )
        tracker.advance(1, stage_means={"routing": 1e-3, "snapshot": 0.0})
        assert events[-1].stage_means_s == (("routing", 1e-3), ("snapshot", 0.0))

    def test_empty_sweep_fraction(self):
        events: list[ProgressEvent] = []
        ProgressTracker(
            total=0, callback=events.append, clock=SteppedClock()
        ).advance(0)
        assert events[-1].fraction == 1.0
        assert events[-1].eta_s == 0.0


class TestStderrProgress:
    def _event(self, completed: int, total: int = 10) -> ProgressEvent:
        return ProgressEvent(
            completed=completed,
            total=total,
            elapsed_s=float(completed),
            rate_per_s=1.0,
            eta_s=float(total - completed),
            stage_means_s=(("routing", 2e-3),),
        )

    def test_rate_limit_keeps_first_and_final_events(self):
        clock = SteppedClock()
        stream = io.StringIO()
        reporter = StderrProgress(stream=stream, min_interval_s=10.0, clock=clock)
        for completed in range(1, 11):
            clock.now += 0.01  # far below the interval
            reporter(self._event(completed))
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2  # first event, final event; the rest dropped
        assert lines[0].startswith("[sweep] 1/10")
        assert lines[-1].startswith("[sweep] 10/10")

    def test_line_format_includes_rate_eta_and_hot_stages(self):
        stream = io.StringIO()
        StderrProgress(stream=stream, min_interval_s=0.0, clock=SteppedClock())(
            self._event(5)
        )
        line = stream.getvalue()
        assert "[sweep] 5/10 cells (50%)" in line
        assert "1.0 cells/s" in line
        assert "eta 5s" in line
        assert "routing 2.00ms" in line

    def test_unknown_eta_renders_dashes(self):
        stream = io.StringIO()
        event = ProgressEvent(
            completed=1, total=10, elapsed_s=0.0, rate_per_s=0.0, eta_s=float("inf")
        )
        StderrProgress(stream=stream, min_interval_s=0.0, clock=SteppedClock())(event)
        assert "eta --" in stream.getvalue()

    def test_hour_and_minute_eta_formatting(self):
        stream = io.StringIO()
        reporter = StderrProgress(stream=stream, min_interval_s=0.0, clock=SteppedClock())
        reporter(
            ProgressEvent(
                completed=1, total=10, elapsed_s=0.0, rate_per_s=1.0, eta_s=7200.0
            )
        )
        reporter(
            ProgressEvent(
                completed=2, total=10, elapsed_s=0.0, rate_per_s=1.0, eta_s=90.0
            )
        )
        lines = stream.getvalue().splitlines()
        assert "eta 2.0h" in lines[0]
        assert "eta 1.5m" in lines[1]

    def test_min_interval_validation(self):
        with pytest.raises(ValueError):
            StderrProgress(min_interval_s=-1.0)
