"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.demand.diurnal import DiurnalProfile
from repro.demand.population import synthetic_population_grid
from repro.demand.spatiotemporal import SpatiotemporalDemandModel
from repro.orbits.time import Epoch
from repro.radiation.belts import default_radiation_model
from repro.radiation.exposure import ExposureCalculator


@pytest.fixture(scope="session")
def epoch() -> Epoch:
    """A fixed reference epoch (2025 March equinox, noon UT)."""
    return Epoch.from_calendar(2025, 3, 20, 12, 0, 0.0)


@pytest.fixture(scope="session")
def population_grid_1deg():
    """The synthetic population grid at 1-degree resolution (built once)."""
    return synthetic_population_grid(resolution_deg=1.0)


@pytest.fixture(scope="session")
def demand_model(population_grid_1deg) -> SpatiotemporalDemandModel:
    """Spatiotemporal demand model built on the shared 1-degree population grid."""
    return SpatiotemporalDemandModel(population=population_grid_1deg, profile=DiurnalProfile())


@pytest.fixture(scope="session")
def radiation_model():
    """The default calibrated trapped-particle model."""
    return default_radiation_model()


@pytest.fixture(scope="session")
def exposure_calculator(radiation_model) -> ExposureCalculator:
    """Exposure calculator with a coarser step to keep test runtime low."""
    return ExposureCalculator(model=radiation_model, step_s=120.0)
