"""Tests of the ``repro-lint`` static analyzer.

Each AST rule gets a seeded violating fixture and a clean counterpart;
the registry layer gets a deliberately broken registry; the baseline and
CLI get workflow tests; and a self-check asserts that linting the live
tree matches the committed ``lint-baseline.json`` exactly.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.tools.lint import (
    Finding,
    LintRunner,
    RegistrySpec,
    all_rules,
    check_registries,
    compare_with_baseline,
    load_baseline,
    main,
    run_lint,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def lint_source(tmp_path: Path, source: str, name: str = "fixture.py") -> list[Finding]:
    """Write ``source`` under ``tmp_path`` and run every rule over it."""
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    module_rules, project_rules = all_rules()
    runner = LintRunner(
        module_rules=module_rules, project_rules=project_rules, root=tmp_path
    )
    return runner.run([tmp_path])


def codes(findings: list[Finding]) -> list[str]:
    return [finding.rule for finding in findings]


class TestDeterminismRule:
    def test_unseeded_rng_and_wall_clocks_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import os
            import random
            import time
            from datetime import datetime

            import numpy as np


            def noisy():
                rng = np.random.default_rng()
                jitter = random.random()
                stamp = time.time()
                now = datetime.now()
                token = os.urandom(8)
                return rng, jitter, stamp, now, token
            """,
        )
        assert codes(findings) == ["RPL001"] * 5

    def test_seeded_rng_and_perf_counter_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import time

            import numpy as np


            def tidy(seed: int = 0):
                rng = np.random.default_rng(seed)
                legacy = np.random.RandomState(42)
                started = time.perf_counter()
                return rng, legacy, started


            def driver():
                return tidy(123)
            """,
        )
        assert findings == []

    def test_legacy_global_numpy_stream_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import numpy as np


            def sample(n):
                return np.random.rand(n)
            """,
        )
        assert codes(findings) == ["RPL001"]


class TestPicklabilityRule:
    def test_unpicklable_payload_reached_from_process_submit(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import threading
            from concurrent.futures import ProcessPoolExecutor
            from dataclasses import dataclass, field


            @dataclass
            class Payload:
                lock: threading.Lock = field(default_factory=threading.Lock)


            def worker(payload: "Payload") -> int:
                return 0


            def sweep(items):
                with ProcessPoolExecutor() as pool:
                    return [pool.submit(worker, item) for item in items]
            """,
        )
        assert "RPL002" in codes(findings)
        assert any("Payload" in finding.message for finding in findings)

    def test_lambda_and_nested_function_submissions_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from concurrent.futures import ProcessPoolExecutor


            def sweep(items):
                def inner(x):
                    return x

                with ProcessPoolExecutor() as pool:
                    one = pool.submit(lambda: 1)
                    two = [pool.submit(inner, i) for i in items]
                return one, two
            """,
        )
        assert codes(findings) == ["RPL002", "RPL002"]

    def test_thread_pool_closures_are_exempt(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from concurrent.futures import ThreadPoolExecutor


            def sweep(items):
                def inner(x):
                    return x

                with ThreadPoolExecutor() as pool:
                    return list(pool.map(inner, items))
            """,
        )
        assert findings == []

    def test_picklable_payload_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from concurrent.futures import ProcessPoolExecutor
            from dataclasses import dataclass


            @dataclass(frozen=True)
            class Payload:
                name: str
                weight: float


            def worker(payload: "Payload") -> float:
                return payload.weight


            def sweep(items):
                with ProcessPoolExecutor() as pool:
                    return [pool.submit(worker, item) for item in items]
            """,
        )
        assert findings == []


class TestSharedStateRule:
    def test_function_scope_mutation_of_module_global_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            CACHE = {}


            def remember(key, value):
                CACHE[key] = value
            """,
        )
        assert codes(findings) == ["RPL003"]

    def test_import_time_registration_is_allowed(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            REGISTRY = {}


            def allocate_equal(flows, links):
                return {}


            REGISTRY["equal"] = allocate_equal
            """,
        )
        assert findings == []

    def test_unreset_cache_class_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            class RouteCache:
                def __init__(self):
                    self.routes = {}

                def reset(self):
                    self.routes = {}

                def lookup(self, key):
                    return self.routes.get(key)
            """,
        )
        assert codes(findings) == ["RPL003"]
        assert "RouteCache" in findings[0].message

    def test_cache_with_live_reset_call_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            class RouteCache:
                def __init__(self):
                    self.routes = {}

                def reset(self):
                    self.routes = {}


            def advance(cache: RouteCache):
                cache.reset()
            """,
        )
        assert findings == []


class TestFloatLoopRule:
    def test_float_accumulation_loop_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def simulate(end, dt):
                t = 0.0
                while t < end:
                    t += dt
                return t
            """,
        )
        assert codes(findings) == ["RPL004"]

    def test_integer_counter_loop_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def iterate(limit):
                rounds = 0
                while rounds < limit:
                    rounds += 1
                return rounds
            """,
        )
        assert findings == []


class TestPerFlowLoopRule:
    NETWORK = "src/repro/network/hot_path.py"

    def test_for_loop_over_flows_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def tally(flows):
                total = 0.0
                for item in flows:
                    total += item.demand_gbps
                return total
            """,
            name=self.NETWORK,
        )
        assert codes(findings) == ["RPL006"]

    def test_generator_sum_and_zip_wrapper_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def offered(candidate_flows, weights):
                total = sum(item.demand_gbps for item in candidate_flows)
                pairs = [w * f.demand_gbps for w, f in zip(weights, candidate_flows)]
                return total, pairs
            """,
            name=self.NETWORK,
        )
        assert codes(findings) == ["RPL006", "RPL006"]

    def test_loop_binding_flow_variable_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def latencies(routed):
                return [flow.latency_ms for flow in routed]
            """,
            name=self.NETWORK,
        )
        assert codes(findings) == ["RPL006"]

    def test_same_loops_outside_network_layer_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def tally(flows):
                return sum(item.demand_gbps for item in flows)
            """,
            name="src/repro/analysis/report.py",
        )
        assert findings == []

    def test_whole_array_network_code_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import numpy as np


            def tally(demand, reachable):
                for attempt in range(3):
                    routed = float(demand[reachable].sum())
                return routed, float(np.count_nonzero(reachable))
            """,
            name=self.NETWORK,
        )
        assert findings == []


class TestDataclassHygieneRule:
    def test_array_field_in_equality_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from dataclasses import dataclass

            import numpy as np


            @dataclass
            class Result:
                label: str
                values: np.ndarray
            """,
        )
        assert codes(findings) == ["RPL005"]

    def test_compare_false_array_field_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from dataclasses import dataclass, field

            import numpy as np


            @dataclass
            class Result:
                label: str
                values: np.ndarray = field(default=None, compare=False)
            """,
        )
        assert findings == []

    def test_unhashable_field_in_frozen_spec_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from dataclasses import dataclass


            @dataclass(frozen=True)
            class Spec:
                name: str
                params: dict[str, float]
            """,
        )
        assert codes(findings) == ["RPL005"]

    def test_frozen_spec_of_scalars_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from dataclasses import dataclass


            @dataclass(frozen=True)
            class Spec:
                name: str
                weight: float
                tags: tuple[str, ...] = ()
            """,
        )
        assert findings == []


class TestSuppressions:
    def test_inline_suppression_silences_the_finding(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import numpy as np


            def noisy():
                return np.random.default_rng()  # repro-lint: ignore[RPL001]
            """,
        )
        assert findings == []

    def test_unused_suppression_is_reported(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def tidy():
                return 1  # repro-lint: ignore[RPL001]
            """,
        )
        assert codes(findings) == ["RPL000"]

    def test_suppression_text_inside_strings_is_inert(self, tmp_path):
        findings = lint_source(
            tmp_path,
            '''
            def document():
                """Explains the marker ``# repro-lint: ignore[RPL001]``."""
                return "# repro-lint: ignore[RPL005]"
            ''',
        )
        assert findings == []

    def test_unparsable_module_becomes_parse_error_finding(self, tmp_path):
        findings = lint_source(tmp_path, "def broken(:\n    pass\n")
        assert codes(findings) == ["RPL099"]


class TestRegistryConformance:
    def test_live_registries_are_conformant(self):
        assert check_registries() == []

    def test_broken_registry_fixture_is_caught(self, tmp_path, monkeypatch):
        fixture = tmp_path / "broken_registry_fixture.py"
        fixture.write_text(
            textwrap.dedent(
                """
                def allocate_good(flows, links):
                    return {}


                def allocate_wrong(flows, links):
                    return {}


                def no_arguments():
                    return {}


                REGISTRY = {
                    "good": allocate_good,
                    "missing": None,
                    "misnamed": allocate_wrong,
                    "lopsided": no_arguments,
                }


                def get_entry(key):
                    if key == "good":
                        return allocate_good
                    return object()
                """
            ),
            encoding="utf-8",
        )
        monkeypatch.syspath_prepend(str(tmp_path))

        import broken_registry_fixture as fixture_module

        def entry_check(key, value):
            import inspect

            try:
                inspect.signature(value).bind(None, None)
            except TypeError as error:
                return [f"entry cannot accept (flows, links): {error}"]
            return []

        def declared_name(key, value):
            name = getattr(value, "__name__", None)
            if name is None:
                return None
            return name.removeprefix("allocate_")

        spec = RegistrySpec(
            module="broken_registry_fixture",
            attribute="REGISTRY",
            entry_check=entry_check,
            declared_name=declared_name,
            accessor=fixture_module.get_entry,
            accessor_name="get_entry",
        )
        findings = check_registries([spec])
        by_key = {}
        for finding in findings:
            key = finding.symbol.split("[")[-1].rstrip("]").strip("'")
            by_key.setdefault(key, set()).add(finding.rule)
        assert by_key["missing"] == {"RPL100"}
        assert "RPL102" in by_key["misnamed"]
        assert "RPL103" in by_key["misnamed"]
        assert "RPL101" in by_key["lopsided"]
        assert "good" not in by_key

    def test_unimportable_registry_module_is_a_finding(self):
        spec = RegistrySpec(module="no_such_module_xyz", attribute="REGISTRY")
        findings = check_registries([spec])
        assert codes(findings) == ["RPL100"]


class TestBaseline:
    def make_finding(self, path="pkg/mod.py", rule="RPL001", message="m", line=3):
        return Finding(rule=rule, path=path, line=line, message=message)

    def test_round_trip_and_matching(self, tmp_path):
        tracked = self.make_finding()
        baseline_path = tmp_path / "lint-baseline.json"
        write_baseline(baseline_path, [tracked])
        baseline = load_baseline(baseline_path)

        moved = self.make_finding(line=30)  # same fingerprint, new line
        fresh = self.make_finding(message="different")
        comparison = compare_with_baseline([moved, fresh], baseline)
        assert comparison.matched == [moved]
        assert comparison.new == [fresh]
        assert comparison.stale == []
        assert not comparison.clean

    def test_fixed_violation_turns_entry_stale(self, tmp_path):
        tracked = self.make_finding()
        baseline_path = tmp_path / "lint-baseline.json"
        write_baseline(baseline_path, [tracked])
        comparison = compare_with_baseline([], load_baseline(baseline_path))
        assert comparison.stale == [tracked]
        assert not comparison.clean

    def test_stale_check_is_scoped_to_linted_paths(self, tmp_path):
        inside = self.make_finding(path="pkg/a.py")
        outside = self.make_finding(path="other/b.py")
        baseline_path = tmp_path / "lint-baseline.json"
        write_baseline(baseline_path, [inside, outside])
        comparison = compare_with_baseline(
            [], load_baseline(baseline_path), scope_prefixes=["pkg"]
        )
        assert comparison.stale == [inside]

    def test_registry_entries_scoped_by_registry_layer_marker(self, tmp_path):
        entry = self.make_finding(path="repro.network.capacity", rule="RPL102")
        baseline_path = tmp_path / "lint-baseline.json"
        write_baseline(baseline_path, [entry])
        baseline = load_baseline(baseline_path)
        without = compare_with_baseline([], baseline, scope_prefixes=["src"])
        assert without.stale == []
        with_registries = compare_with_baseline(
            [], baseline, scope_prefixes=["src", ""]
        )
        assert with_registries.stale == [entry]

    def test_disabled_rules_cannot_turn_entries_stale(self, tmp_path):
        entry = self.make_finding(rule="RPL005")
        baseline_path = tmp_path / "lint-baseline.json"
        write_baseline(baseline_path, [entry])
        comparison = compare_with_baseline(
            [],
            load_baseline(baseline_path),
            enabled=lambda code: code == "RPL001",
        )
        assert comparison.stale == []
        assert comparison.clean

    def test_malformed_baseline_rejected(self, tmp_path):
        path = tmp_path / "lint-baseline.json"
        path.write_text('{"version": 99, "entries": []}', encoding="utf-8")
        with pytest.raises(ValueError, match="version-1"):
            load_baseline(path)


class TestCli:
    VIOLATION = textwrap.dedent(
        """
        import numpy as np


        def noisy():
            return np.random.default_rng()
        """
    )

    def write_fixture(self, tmp_path, source=None):
        target = tmp_path / "pkg"
        target.mkdir(exist_ok=True)
        (target / "mod.py").write_text(
            source if source is not None else self.VIOLATION, encoding="utf-8"
        )
        return target

    def test_findings_fail_without_baseline(self, tmp_path, monkeypatch, capsys):
        self.write_fixture(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert main(["pkg", "--no-registries"]) == 1
        assert "RPL001" in capsys.readouterr().out

    def test_select_narrows_the_rule_set(self, tmp_path, monkeypatch):
        self.write_fixture(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert main(["pkg", "--select", "RPL004", "--no-registries"]) == 0

    def test_baseline_workflow_tracks_then_fails_stale(
        self, tmp_path, monkeypatch, capsys
    ):
        target = self.write_fixture(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert main(["pkg", "--no-registries", "--write-baseline"]) == 0
        assert (tmp_path / "lint-baseline.json").exists()
        # Tracked violation is allowed...
        assert main(["pkg", "--no-registries"]) == 0
        # ...a new violation is not...
        (target / "new.py").write_text(
            "import time\n\n\ndef stamp():\n    return time.time()\n",
            encoding="utf-8",
        )
        assert main(["pkg", "--no-registries"]) == 1
        (target / "new.py").unlink()
        # ...and fixing the tracked violation makes the entry stale.
        self.write_fixture(tmp_path, source="def tidy():\n    return 1\n")
        capsys.readouterr()
        assert main(["pkg", "--no-registries"]) == 1
        assert "stale" in capsys.readouterr().out

    def test_select_does_not_stale_out_other_rules_entries(
        self, tmp_path, monkeypatch
    ):
        self.write_fixture(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert main(["pkg", "--no-registries", "--write-baseline"]) == 0
        # The RPL001 baseline entry is out of scope for an RPL004-only run.
        assert main(["pkg", "--select", "RPL004", "--no-registries"]) == 0

    def test_json_format_is_parseable(self, tmp_path, monkeypatch, capsys):
        self.write_fixture(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert main(["pkg", "--no-registries", "--format=json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["findings"][0]["rule"] == "RPL001"

    def test_missing_path_is_a_usage_error(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["no_such_dir.txt", "--no-registries"]) == 2
        assert "error" in capsys.readouterr().err


class TestSelfCheck:
    def test_live_tree_matches_committed_baseline(self):
        findings = run_lint(
            [
                str(REPO_ROOT / "src"),
                str(REPO_ROOT / "tests"),
                str(REPO_ROOT / "benchmarks"),
            ],
            root=REPO_ROOT,
        )
        baseline = load_baseline(REPO_ROOT / "lint-baseline.json")
        comparison = compare_with_baseline(
            findings, baseline, ["src", "tests", "benchmarks", ""]
        )
        assert [finding.render() for finding in comparison.new] == []
        assert [entry.render() for entry in comparison.stale] == []
