"""Tests of the interprocedural lint layer: the import-graph/call-graph
substrate and the RPL007/008/009 rules that ride on it.

Every rule gets a violating fixture and a clean counterpart, including the
two reconstructions the layer exists for: a seed derived from
``time.time()`` three calls away from the executor submit site (RPL007)
and the historical ``_SharedRouteCache`` unlocked-write bug (RPL008).
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.tools.lint import Finding, ImportGraph, LintRunner, all_rules, run_lint
from repro.tools.lint.importgraph import RawImport, module_imports
import ast

REPO_ROOT = Path(__file__).resolve().parents[2]


def lint_tree(tmp_path: Path, sources: dict[str, str]) -> list[Finding]:
    """Write ``{rel_path: source}`` under ``tmp_path`` and lint the tree."""
    for rel_path, source in sources.items():
        target = tmp_path / rel_path
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    module_rules, project_rules = all_rules()
    runner = LintRunner(
        module_rules=module_rules, project_rules=project_rules, root=tmp_path
    )
    return runner.run([tmp_path])


def codes(findings: list[Finding]) -> set[str]:
    return {finding.rule for finding in findings}


def by_code(findings: list[Finding], code: str) -> list[Finding]:
    return [finding for finding in findings if finding.rule == code]


class TestImportGraph:
    def graph_of(self, sources: dict[str, str]) -> ImportGraph:
        return ImportGraph.build(
            {
                rel_path: module_imports(ast.parse(textwrap.dedent(source)))
                for rel_path, source in sources.items()
            }
        )

    def test_src_layout_suffix_resolution(self):
        graph = self.graph_of(
            {
                "src/repro/network/capacity.py": "",
                "src/repro/network/faults.py": (
                    "from repro.network.capacity import Flow\n"
                ),
                "tests/test_faults.py": "import repro.network.faults\n",
            }
        )
        assert graph.edges["src/repro/network/faults.py"] == {
            "src/repro/network/capacity.py"
        }
        assert graph.edges["tests/test_faults.py"] == {
            "src/repro/network/faults.py"
        }

    def test_relative_imports_resolve_against_the_package(self):
        graph = self.graph_of(
            {
                "pkg/__init__.py": "",
                "pkg/inner/__init__.py": "",
                "pkg/inner/a.py": "from .b import thing\n",
                "pkg/inner/b.py": "from ..top import other\n",
                "pkg/top.py": "",
            }
        )
        assert graph.edges["pkg/inner/a.py"] == {"pkg/inner/b.py"}
        assert graph.edges["pkg/inner/b.py"] == {"pkg/top.py"}

    def test_ambiguous_suffix_creates_no_edge(self):
        graph = self.graph_of(
            {
                "one/grid.py": "",
                "two/grid.py": "",
                "user.py": "import grid\n",
                "precise.py": "from one.grid import thing\n",
            }
        )
        assert graph.edges["user.py"] == set()
        assert graph.edges["precise.py"] == {"one/grid.py"}

    def test_cycles_terminate_in_both_closures(self):
        graph = self.graph_of(
            {
                "a.py": "import b\n",
                "b.py": "import c\n",
                "c.py": "import a\n",  # a -> b -> c -> a
                "d.py": "",
            }
        )
        assert graph.dependents_closure(["b.py"]) == {"a.py", "b.py", "c.py"}
        assert graph.dependencies_closure(["b.py"]) == {
            "a.py",
            "b.py",
            "c.py",
        }
        assert graph.dependents_closure(["d.py"]) == {"d.py"}

    def test_import_cycle_does_not_break_the_linter(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "a.py": "import b\n\n\ndef use():\n    return b.helper()\n",
                "b.py": "import a\n\n\ndef helper():\n    return 1\n",
            },
        )
        assert codes(findings) == set()


class TestSeedProvenance:
    def test_wall_clock_seed_three_calls_from_submit_site(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "sweep.py": """
                import time
                from concurrent.futures import ThreadPoolExecutor

                from numpy.random import default_rng


                def make_seed():
                    return int(time.time())


                def derive(cfg):
                    return make_seed() + cfg


                def worker(cfg):
                    rng = default_rng(derive(cfg))
                    return rng.random()


                def run(configs):
                    with ThreadPoolExecutor() as pool:
                        futures = [pool.submit(worker, cfg) for cfg in configs]
                    return [future.result() for future in futures]
                """
            },
        )
        provenance = by_code(findings, "RPL007")
        assert len(provenance) == 1
        assert "wall clock" in provenance[0].message
        # The finding anchors at the origin of the bad value.
        assert provenance[0].symbol == "make_seed"

    def test_seed_from_spec_field_is_clean(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "sweep.py": """
                from dataclasses import dataclass

                from numpy.random import default_rng


                @dataclass(frozen=True)
                class Scenario:
                    name: str
                    seed: int


                def worker(scenario: Scenario):
                    rng = default_rng(scenario.seed)
                    return rng.random()


                def run(scenarios):
                    return [worker(scenario) for scenario in scenarios]
                """
            },
        )
        assert "RPL007" not in codes(findings)

    def test_seed_traced_through_callers_to_a_literal_is_clean(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "lib.py": """
                from numpy.random import default_rng


                def sample(seed):
                    return default_rng(seed).random()
                """,
                "app.py": """
                from lib import sample


                def run():
                    return sample(1234)
                """,
            },
        )
        assert "RPL007" not in codes(findings)

    def test_bare_parameter_with_no_seeded_caller_is_flagged(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "lib.py": """
                from numpy.random import default_rng


                def sample(seed):
                    return default_rng(seed).random()
                """
            },
        )
        provenance = by_code(findings, "RPL007")
        assert len(provenance) == 1
        assert "bare parameter 'seed'" in provenance[0].message

    def test_unseeded_rng_derivation_is_flagged(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "lib.py": """
                import numpy as np
                from numpy.random import default_rng


                def resample():
                    wild = np.random.default_rng()  # repro-lint: ignore[RPL001]
                    child = default_rng(int(wild.integers(2**32)))
                    return child.random()
                """
            },
        )
        assert any(
            "unseeded" in finding.message
            for finding in by_code(findings, "RPL007")
        )

    def test_pytest_parametrize_seed_parameter_is_exempt(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "test_thing.py": """
                import pytest
                from numpy.random import default_rng


                @pytest.mark.parametrize("seed", [0, 1, 2])
                def test_stream(seed):
                    rng = default_rng(seed)
                    assert rng.random() >= 0
                """
            },
        )
        assert "RPL007" not in codes(findings)


class TestExecutorRaces:
    SHARED_ROUTE_CACHE = """
    import threading
    from concurrent.futures import ThreadPoolExecutor


    class SharedRouteCache:
        def __init__(self):
            self._lock = threading.Lock()
            self._routes = {{}}

        def routes_from(self, router, source):
            {body}


    def sweep(scenarios, router):
        cache = SharedRouteCache()

        def evaluate(scenario):
            return cache.routes_from(router, scenario)

        with ThreadPoolExecutor() as pool:
            return list(pool.map(evaluate, scenarios))
    """

    def test_historical_shared_route_cache_pattern_is_redetected(
        self, tmp_path
    ):
        findings = lint_tree(
            tmp_path,
            {
                "engine.py": self.SHARED_ROUTE_CACHE.format(
                    body=(
                        "if source not in self._routes:\n"
                        "                self._routes[source] = "
                        "router.compute(source)\n"
                        "            return self._routes[source]"
                    )
                )
            },
        )
        races = by_code(findings, "RPL008")
        assert races, [finding.render() for finding in findings]
        assert any("'self'" in finding.message for finding in races)

    def test_lock_guarded_cache_is_clean(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "engine.py": self.SHARED_ROUTE_CACHE.format(
                    body=(
                        "with self._lock:\n"
                        "                if source not in self._routes:\n"
                        "                    self._routes[source] = "
                        "router.compute(source)\n"
                        "                return self._routes[source]"
                    )
                )
            },
        )
        assert "RPL008" not in codes(findings)

    def test_direct_write_to_captured_container_is_flagged(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "engine.py": """
                from concurrent.futures import ThreadPoolExecutor


                def sweep(scenarios):
                    results = {}

                    def evaluate(scenario):
                        results[scenario] = scenario * 2
                        return scenario

                    with ThreadPoolExecutor() as pool:
                        list(pool.map(evaluate, scenarios))
                    return results
                """
            },
        )
        races = by_code(findings, "RPL008")
        assert any("'results'" in finding.message for finding in races)

    def test_worker_local_accumulator_is_merge_pattern_clean(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "engine.py": """
                from concurrent.futures import ThreadPoolExecutor


                def evaluate(scenario):
                    local = {}
                    local[scenario] = scenario * 2
                    return local


                def sweep(scenarios):
                    with ThreadPoolExecutor() as pool:
                        partials = list(pool.map(evaluate, scenarios))
                    merged = {}
                    for partial in partials:
                        merged.update(partial)
                    return merged
                """
            },
        )
        assert "RPL008" not in codes(findings)

    def test_process_worker_mutating_cross_module_global_is_flagged(
        self, tmp_path
    ):
        findings = lint_tree(
            tmp_path,
            {
                "registry.py": "REGISTRY = {}\n",
                "engine.py": """
                from concurrent.futures import ProcessPoolExecutor

                from registry import REGISTRY


                def worker(item):
                    REGISTRY[item] = item * 2  # diverges across processes
                    return item


                def sweep(items):
                    with ProcessPoolExecutor() as pool:
                        return list(pool.map(worker, items))
                """,
            },
        )
        races = by_code(findings, "RPL008")
        assert any("'REGISTRY'" in finding.message for finding in races)


class TestMergeSafety:
    def test_lock_field_on_merge_target_is_flagged(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "metrics.py": """
                import threading


                class Metrics:
                    def __init__(self):
                        self.counts = {}
                        self._lock = threading.Lock()

                    def merge(self, other):
                        for key, value in other.counts.items():
                            self.counts[key] = self.counts.get(key, 0) + value
                """
            },
        )
        safety = by_code(findings, "RPL009")
        assert len(safety) == 1
        assert "'_lock'" in safety[0].message

    def test_lambda_and_handle_fields_are_flagged(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "metrics.py": """
                class Sink:
                    def __init__(self, path):
                        self.transform = lambda value: value + 1
                        self.handle = open(path, "a")

                    def merge(self, other):
                        return self
                """
            },
        )
        messages = [finding.message for finding in by_code(findings, "RPL009")]
        assert any("'transform'" in message for message in messages)
        assert any("'handle'" in message for message in messages)

    def test_elementwise_mergeable_dataclass_is_clean(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "metrics.py": """
                from dataclasses import dataclass, field


                @dataclass
                class RunMetrics:
                    delivered: float = 0.0
                    dropped: float = 0.0
                    per_station: dict = field(default_factory=dict)

                    def merge(self, other):
                        self.delivered += other.delivered
                        self.dropped += other.dropped
                        for key, value in other.per_station.items():
                            self.per_station[key] = (
                                self.per_station.get(key, 0.0) + value
                            )
                """
            },
        )
        assert "RPL009" not in codes(findings)

    def test_zero_argument_finalisers_do_not_count_as_merge(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "metrics.py": """
                import threading


                class Builder:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def merge(self):
                        return dict()
                """
            },
        )
        assert "RPL009" not in codes(findings)


class TestSuppressionsForDataflowRules:
    def test_inline_suppression_silences_rpl009(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "metrics.py": """
                import threading


                class Metrics:
                    def __init__(self):
                        self.counts = {}
                        self._lock = threading.Lock()  # repro-lint: ignore[RPL009]

                    def merge(self, other):
                        return self
                """
            },
        )
        assert "RPL009" not in codes(findings)
        assert "RPL000" not in codes(findings)


class TestDataflowSelfCheck:
    def test_live_tree_is_clean_for_interprocedural_rules(self):
        findings = run_lint(
            [
                str(REPO_ROOT / "src"),
                str(REPO_ROOT / "tests"),
                str(REPO_ROOT / "benchmarks"),
            ],
            select={"RPL007", "RPL008", "RPL009"},
            registries=False,
            root=REPO_ROOT,
        )
        assert findings == [], [finding.render() for finding in findings]
