"""Tests of the incremental lint cache and the RPL099 coverage fixes.

The contract under test: a warm run parses nothing when nothing changed,
parses exactly the changed file's import-graph cone when one file
changed (asserted via the cache's parse counter), produces the same
findings a cold run would, and discards itself wholesale on a key
mismatch.  Unreadable paths surface as RPL099 instead of silently
shrinking coverage.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.tools.lint import Finding, LintCache, LintRunner, all_rules, main
import repro.tools.lint.engine as engine_module

CACHE_KEY = "test-rules|ALL|root"


def write_tree(tmp_path: Path, sources: dict[str, str]) -> None:
    for rel_path, source in sources.items():
        target = tmp_path / rel_path
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")


def make_runner(tmp_path: Path) -> LintRunner:
    module_rules, project_rules = all_rules()
    return LintRunner(
        module_rules=module_rules, project_rules=project_rules, root=tmp_path
    )


CHAIN = {
    # a -> b -> c, d independent: c's cone is {a, b, c}.
    "pkg/a.py": """
    from pkg.b import middle


    def top():
        return middle() + 1
    """,
    "pkg/b.py": """
    from pkg.c import leaf


    def middle():
        return leaf() + 1
    """,
    "pkg/c.py": """
    def leaf():
        return 1
    """,
    "pkg/d.py": """
    def independent():
        return 4
    """,
}


class TestIncrementalRuns:
    def test_cold_then_warm_then_leaf_cone(self, tmp_path):
        write_tree(tmp_path, CHAIN)
        runner = make_runner(tmp_path)

        cache = LintCache(CACHE_KEY)
        assert runner.run([tmp_path], cache=cache) == []
        assert cache.stats.parsed == 4  # cold: everything

        cache.stats = type(cache.stats)()
        assert runner.run([tmp_path], cache=cache) == []
        assert cache.stats.parsed == 0  # warm, untouched: nothing

        # Touching the leaf re-parses exactly its import-graph cone:
        # c itself plus its transitive importers b and a -- never d.
        (tmp_path / "pkg" / "c.py").write_text(
            "def leaf():\n    return 2\n", encoding="utf-8"
        )
        cache.stats = type(cache.stats)()
        assert runner.run([tmp_path], cache=cache) == []
        assert cache.stats.parsed == 3
        assert cache.stats.changed == 1
        assert cache.stats.reused == 1  # d.py replayed

    def test_warm_findings_match_cold_findings(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "pkg/lib.py": """
                import time


                def helper():
                    return int(time.time())
                """,
                "pkg/app.py": """
                from pkg.lib import helper

                from numpy.random import default_rng


                def worker():
                    return default_rng(helper()).random()
                """,
            },
        )
        runner = make_runner(tmp_path)
        cold = runner.run([tmp_path])
        assert {finding.rule for finding in cold} == {"RPL001", "RPL007"}

        cache = LintCache(CACHE_KEY)
        assert runner.run([tmp_path], cache=cache) == cold
        # Warm replay, nothing touched: same findings, zero parses.
        cache.stats = type(cache.stats)()
        assert runner.run([tmp_path], cache=cache) == cold
        assert cache.stats.parsed == 0

    def test_transitive_import_edit_invalidates_dependents(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "pkg/lib.py": """
                import time


                def helper():
                    return int(time.time())
                """,
                "pkg/app.py": """
                from pkg.lib import helper

                from numpy.random import default_rng


                def worker():
                    return default_rng(helper()).random()
                """,
            },
        )
        runner = make_runner(tmp_path)
        cache = LintCache(CACHE_KEY)
        first = runner.run([tmp_path], cache=cache)
        assert any(finding.rule == "RPL007" for finding in first)

        # Fixing the helper must clear the interprocedural finding even
        # though the sink module app.py itself never changed.
        (tmp_path / "pkg" / "lib.py").write_text(
            "def helper():\n    return 42\n", encoding="utf-8"
        )
        cache.stats = type(cache.stats)()
        second = runner.run([tmp_path], cache=cache)
        assert second == []
        assert cache.stats.parsed == 2  # lib + its dependent app

        # ...and re-breaking it brings the finding back on a warm cache.
        write_tree(
            tmp_path,
            {
                "pkg/lib.py": """
                import time


                def helper():
                    return int(time.time())
                """
            },
        )
        third = runner.run([tmp_path], cache=cache)
        assert any(finding.rule == "RPL007" for finding in third)

    def test_new_module_rewires_edges_without_touching_importer(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "pkg/app.py": """
                from pkg.util import helper


                def top():
                    return helper()
                """,
            },
        )
        runner = make_runner(tmp_path)
        cache = LintCache(CACHE_KEY)
        runner.run([tmp_path], cache=cache)

        # A new module satisfies app.py's import: app.py's bytes did not
        # change, but its resolved edges did, so it must be re-analysed.
        write_tree(
            tmp_path,
            {
                "pkg/util.py": """
                def helper():
                    return 7
                """
            },
        )
        cache.stats = type(cache.stats)()
        runner.run([tmp_path], cache=cache)
        assert cache.stats.parsed == 2
        assert cache.stats.changed == 2  # util (new) + app (edge drift)

    def test_key_mismatch_discards_the_cache(self, tmp_path):
        write_tree(tmp_path, {"pkg/a.py": "def f():\n    return 1\n"})
        runner = make_runner(tmp_path)
        cache = LintCache("rules-v1")
        runner.run([tmp_path], cache=cache)
        cache_path = tmp_path / "cache.json"
        cache.save(cache_path)

        same = LintCache.load(cache_path, "rules-v1")
        assert not same.cold and same.entries

        other = LintCache.load(cache_path, "rules-v2")
        assert other.cold and not other.entries

    def test_save_load_round_trip_preserves_findings(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "pkg/noisy.py": """
                import time


                def stamp():
                    return time.time()
                """
            },
        )
        runner = make_runner(tmp_path)
        cache = LintCache(CACHE_KEY)
        first = runner.run([tmp_path], cache=cache)
        assert [finding.rule for finding in first] == ["RPL001"]
        cache_path = tmp_path / "cache.json"
        cache.save(cache_path)

        revived = LintCache.load(cache_path, CACHE_KEY)
        revived.stats = type(revived.stats)()
        second = runner.run([tmp_path], cache=revived)
        assert second == first
        assert revived.stats.parsed == 0

    def test_deleted_file_is_pruned(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "pkg/keep.py": "def f():\n    return 1\n",
                "pkg/gone.py": "def g():\n    return 2\n",
            },
        )
        runner = make_runner(tmp_path)
        cache = LintCache(CACHE_KEY)
        runner.run([tmp_path], cache=cache)
        assert "pkg/gone.py" in cache.entries

        (tmp_path / "pkg" / "gone.py").unlink()
        runner.run([tmp_path], cache=cache)
        assert "pkg/gone.py" not in cache.entries


class TestUnreadablePaths:
    def test_undecodable_file_is_a_parse_error_finding(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "binary.py").write_bytes(b"\xff\xfe\x00junk")
        runner = make_runner(tmp_path)
        findings = runner.run([tmp_path])
        assert [finding.rule for finding in findings] == ["RPL099"]
        assert findings[0].path == "pkg/binary.py"

    def test_permission_denied_file_is_a_parse_error_finding(
        self, tmp_path, monkeypatch
    ):
        write_tree(
            tmp_path,
            {
                "pkg/open.py": "def f():\n    return 1\n",
                "pkg/locked.py": "def g():\n    return 2\n",
            },
        )
        real_read_text = Path.read_text

        def read_text(self, *args, **kwargs):
            # The suite runs as root, where chmod 000 still reads fine;
            # simulate the EACCES the engine must surface.
            if self.name == "locked.py":
                raise PermissionError(13, "Permission denied", str(self))
            return real_read_text(self, *args, **kwargs)

        monkeypatch.setattr(Path, "read_text", read_text)
        runner = make_runner(tmp_path)
        findings = runner.run([tmp_path])
        assert [finding.rule for finding in findings] == ["RPL099"]
        assert findings[0].path == "pkg/locked.py"
        assert "Permission denied" in findings[0].message

    def test_unlistable_directory_is_a_parse_error_finding(
        self, tmp_path, monkeypatch
    ):
        write_tree(tmp_path, {"pkg/mod.py": "def f():\n    return 1\n"})
        real_walk = engine_module.os.walk

        def walk(top, onerror=None, **kwargs):
            if onerror is not None:
                onerror(
                    PermissionError(
                        13, "Permission denied", str(Path(top) / "secret")
                    )
                )
            return real_walk(top, onerror=onerror, **kwargs)

        monkeypatch.setattr(engine_module.os, "walk", walk)
        runner = make_runner(tmp_path)
        findings = runner.run([tmp_path])
        assert [finding.rule for finding in findings] == ["RPL099"]
        assert findings[0].path.endswith("secret")
        assert "could not be read" in findings[0].message


class TestCliCache:
    VIOLATION = """
    import numpy as np


    def noisy():
        return np.random.default_rng()
    """

    def write_fixture(self, tmp_path):
        (tmp_path / "pkg").mkdir(exist_ok=True)
        (tmp_path / "pkg" / "mod.py").write_text(
            textwrap.dedent(self.VIOLATION), encoding="utf-8"
        )

    def test_cache_flag_round_trip(self, tmp_path, monkeypatch, capsys):
        self.write_fixture(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert main(["pkg", "--no-registries", "--no-baseline", "--cache"]) == 1
        captured = capsys.readouterr()
        assert "RPL001" in captured.out
        assert "cold cache" in captured.err
        assert (tmp_path / ".repro-lint-cache.json").exists()

        assert main(["pkg", "--no-registries", "--no-baseline", "--cache"]) == 1
        captured = capsys.readouterr()
        assert "RPL001" in captured.out  # warm replay keeps the finding
        assert "warm cache" in captured.err
        assert "0/1 files parsed" in captured.err

    def test_no_cache_forces_a_full_run(self, tmp_path, monkeypatch, capsys):
        self.write_fixture(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert (
            main(
                [
                    "pkg",
                    "--no-registries",
                    "--no-baseline",
                    "--cache",
                    "--no-cache",
                ]
            )
            == 1
        )
        assert "no cache" in capsys.readouterr().err
        assert not (tmp_path / ".repro-lint-cache.json").exists()

    def test_select_change_invalidates_via_key(
        self, tmp_path, monkeypatch, capsys
    ):
        self.write_fixture(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert main(["pkg", "--no-registries", "--no-baseline", "--cache"]) == 1
        capsys.readouterr()
        # A narrower rule set must not replay the RPL001 finding.
        assert (
            main(
                [
                    "pkg",
                    "--select",
                    "RPL004",
                    "--no-registries",
                    "--no-baseline",
                    "--cache",
                ]
            )
            == 0
        )
        assert "cold cache" in capsys.readouterr().err

    def test_stale_baseline_prints_regeneration_hint(
        self, tmp_path, monkeypatch, capsys
    ):
        self.write_fixture(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert main(["pkg", "--no-registries", "--write-baseline"]) == 0
        # Fix the violation: the baseline entry goes stale and the CLI
        # must print the exact regeneration command and the new size.
        (tmp_path / "pkg" / "mod.py").write_text(
            "def tidy():\n    return 1\n", encoding="utf-8"
        )
        capsys.readouterr()
        assert main(["pkg", "--no-registries"]) == 1
        out = capsys.readouterr().out
        assert "python -m repro.tools.lint pkg --write-baseline" in out
        assert "down by 1" in out

    def test_github_format_emits_annotations(
        self, tmp_path, monkeypatch, capsys
    ):
        self.write_fixture(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert (
            main(
                [
                    "pkg",
                    "--no-registries",
                    "--no-baseline",
                    "--format=github",
                ]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "::error file=pkg/mod.py,line=" in out
        assert "title=repro-lint RPL001::" in out
