"""Equivalence tests of the columnar flow engine against the object path.

The columnar engine is an *implementation* swap, not a semantics change:
``flow_engine="columnar"`` must reproduce the object pipeline bit for bit
-- same selection permutation, same routed paths, same allocations, same
:class:`~repro.network.simulation.StepStatistics` -- on every backend and
executor.  These tests assert exact dataclass equality (no tolerances):
both engines compute their scalars as numpy float64 reductions over
identically ordered arrays, so any drift is a real ordering bug.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coverage.walker import WalkerDelta
from repro.demand.traffic_matrix import City, GravityTrafficModel, TrafficMatrix
from repro.network.flows import select_flow_table
from repro.network.ground_station import GroundStation
from repro.network.routing import SnapshotRouter
from repro.network.simulation import NetworkSimulator, Scenario
from repro.network.topology import ConstellationTopology

CITIES = (
    City("London", 51.5, -0.1, 9.6),
    City("New York", 40.7, -74.0, 20.0),
    City("Tokyo", 35.7, 139.7, 37.0),
    City("Sao Paulo", -23.6, -46.6, 22.0),
)
NAMES = tuple(city.name for city in CITIES)


@pytest.fixture(scope="module")
def simulator(epoch) -> NetworkSimulator:
    wd = WalkerDelta(
        altitude_km=560.0, inclination_deg=65.0, total_satellites=180, planes=10, phasing=1
    )
    elements = wd.satellite_elements()
    per_plane = wd.satellites_per_plane
    planes = [elements[i * per_plane : (i + 1) * per_plane] for i in range(wd.planes)]
    topology = ConstellationTopology(planes=planes, epoch=epoch)
    stations = [GroundStation(c.name, c.latitude_deg, c.longitude_deg) for c in CITIES]
    return NetworkSimulator(
        topology=topology,
        ground_stations=stations,
        traffic_model=GravityTrafficModel(cities=CITIES, total_demand=40.0),
        flows_per_step=10,
    )


class TestSelection:
    def test_columnar_selection_matches_object_selection(self):
        matrix = GravityTrafficModel(cities=CITIES, total_demand=40.0).matrix_at(12.0)
        for budget in (1, 3, 7, 12, 50):
            for multiplier in (1.0, 2.5):
                reference = NetworkSimulator._select_flows(
                    matrix, NAMES, budget, demand_multiplier=multiplier
                )
                table = select_flow_table(
                    matrix, NAMES, budget, demand_multiplier=multiplier
                )
                assert table.candidates() == reference

    def test_tie_break_at_budget_boundary_is_deterministic(self):
        # Regression: with every off-diagonal demand equal, the old
        # demand-only sort key left the budget cut to the matrix iteration
        # order.  The (-demand, src, dst) key makes the cut deterministic
        # and identical between the engines.
        demands = np.full((4, 4), 2.0)
        np.fill_diagonal(demands, 0.0)
        matrix = TrafficMatrix(cities=CITIES, demands=demands)
        expected = sorted(
            (src, dst) for src in NAMES for dst in NAMES if src != dst
        )[:5]
        reference = NetworkSimulator._select_flows(matrix, NAMES, 5, 1.0)
        assert [(src, dst) for src, dst, _ in reference] == expected
        table = select_flow_table(matrix, NAMES, 5)
        assert table.candidates() == reference

    def test_station_subset_and_missing_names_handled(self):
        matrix = GravityTrafficModel(cities=CITIES, total_demand=40.0).matrix_at(0.0)
        subset = ("Tokyo", "London", "Atlantis")
        reference = NetworkSimulator._select_flows(matrix, subset, 10, 1.0)
        table = select_flow_table(matrix, subset, 10)
        assert table.candidates() == reference
        assert {src for src, _, _ in table.candidates()} <= {"Tokyo", "London"}


class TestBulkPathExport:
    def test_bulk_rows_match_lazy_reconstruction(self, simulator, epoch):
        sequence = simulator.topology.snapshot_sequence(
            [epoch], simulator.ground_stations
        )
        edge_list = sequence.edge_list(0)
        router = SnapshotRouter(backend="csgraph", arrays=edge_list.arrays())
        table = router.routes_from_many(["gs:London"])["gs:London"]
        node_index = table.node_index

        labels = [f"gs:{name}" for name in ("New York", "Tokyo", "Sao Paulo")]
        dest_rows = [node_index.index_of(label) for label in labels]
        dest_rows.append(-1)  # unknown destination: empty segment, inf latency
        offsets, rows, latency = table.bulk_path_rows(
            np.asarray(dest_rows, dtype=np.int64)
        )

        assert offsets[0] == 0 and offsets[-1] == rows.size
        for position, label in enumerate(labels):
            segment = rows[offsets[position] : offsets[position + 1]]
            reference = table[label]
            assert [node_index.label_of(int(row)) for row in segment] == list(
                reference.path
            )
            assert latency[position] == reference.latency_ms
        assert offsets[-2] == offsets[-1]  # the unknown destination
        assert np.isinf(latency[-1])


SCENARIOS = [
    Scenario(name="proportional"),
    Scenario(name="max_min", allocator="max_min"),
    Scenario(name="proportional_array", allocator="proportional_array"),
    Scenario(name="max_min_array", allocator="max_min_array"),
    Scenario(name="budget", flows_per_step=4, telemetry="exact"),
    Scenario(
        name="subset",
        ground_station_names=("London", "Tokyo", "New York"),
        telemetry="auto",
    ),
]


class TestEngineEquivalence:
    @pytest.mark.parametrize("backend", ["networkx", "csgraph"])
    def test_columnar_steps_bit_identical(self, simulator, epoch, backend):
        reference = simulator.run_scenarios(
            SCENARIOS, epoch, duration_hours=2.0, backend=backend
        )
        columnar = simulator.run_scenarios(
            SCENARIOS,
            epoch,
            duration_hours=2.0,
            backend=backend,
            flow_engine="columnar",
        )
        for scenario in SCENARIOS:
            assert (
                columnar[scenario.name].steps == reference[scenario.name].steps
            ), f"{backend}/{scenario.name} diverged"

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_executors_agree_with_serial_columnar(self, simulator, epoch, executor):
        serial = simulator.run_scenarios(
            SCENARIOS,
            epoch,
            duration_hours=2.0,
            backend="csgraph",
            flow_engine="columnar",
        )
        pooled = simulator.run_scenarios(
            SCENARIOS,
            epoch,
            duration_hours=2.0,
            backend="csgraph",
            executor=executor,
            max_workers=2,
            flow_engine="columnar",
        )
        for scenario in SCENARIOS:
            assert pooled[scenario.name].steps == serial[scenario.name].steps

    def test_run_accepts_flow_engine(self, simulator, epoch):
        reference = simulator.run(epoch, duration_hours=1.0, backend="csgraph")
        columnar = simulator.run(
            epoch, duration_hours=1.0, backend="csgraph", flow_engine="columnar"
        )
        assert columnar.steps == reference.steps

    def test_scenario_override_beats_sweep_default(self, simulator, epoch):
        mixed = simulator.run_scenarios(
            [
                Scenario(name="objects", flow_engine="objects"),
                Scenario(name="columnar", flow_engine="columnar"),
            ],
            epoch,
            duration_hours=1.0,
            backend="csgraph",
        )
        assert mixed["objects"].steps == mixed["columnar"].steps

    def test_invalid_flow_engine_rejected(self, simulator, epoch):
        with pytest.raises(ValueError):
            Scenario(name="x", flow_engine="rows")
        with pytest.raises(ValueError):
            Scenario(name="x", telemetry="census")
        with pytest.raises(ValueError):
            simulator.run_scenarios(
                [Scenario(name="a")], epoch, 1.0, flow_engine="rows"
            )


class TestSweepTelemetry:
    def _sweep(self, simulator, epoch, **kwargs):
        return simulator.run_scenarios(
            [Scenario(name="t", telemetry="exact", allocator="max_min_array")],
            epoch,
            duration_hours=3.0,
            backend="csgraph",
            **kwargs,
        )

    def test_aggregate_totals_offered_demand(self, simulator, epoch):
        result = self._sweep(simulator, epoch)["t"]
        assert result.telemetry is not None
        offered = sum(step.offered_gbps for step in result.steps)
        assert result.telemetry.total_gbps() == pytest.approx(offered)
        assert result.telemetry.top_pairs(3)
        for step in result.steps:
            assert step.top_pairs
            values = [value for _, _, value in step.top_pairs]
            assert values == sorted(values, reverse=True)

    def test_engines_and_executors_agree_on_telemetry(self, simulator, epoch):
        serial = self._sweep(simulator, epoch)["t"]
        columnar = self._sweep(simulator, epoch, flow_engine="columnar")["t"]
        process = self._sweep(
            simulator, epoch, executor="process", max_workers=2,
            flow_engine="columnar",
        )["t"]
        reference_top = serial.telemetry.top_pairs(5)
        assert columnar.telemetry.top_pairs(5) == reference_top
        assert process.telemetry.top_pairs(5) == reference_top
        assert columnar.telemetry.total_gbps() == serial.telemetry.total_gbps()
        assert process.telemetry.total_gbps() == pytest.approx(
            serial.telemetry.total_gbps()
        )

    def test_scenario_without_telemetry_has_none(self, simulator, epoch):
        result = simulator.run_scenarios(
            [Scenario(name="quiet")], epoch, 1.0, backend="csgraph"
        )["quiet"]
        assert result.telemetry is None
        assert all(step.top_pairs == () for step in result.steps)
