"""Tests of ISL feasibility and ground-station primitives."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.constants import EARTH_RADIUS_KM
from repro.network.ground_station import (
    GroundStation,
    default_ground_stations,
    visible_satellites,
)
from repro.network.isl import ISLConfig, grazing_altitude_km, isl_feasible, propagation_delay_ms


class TestISL:
    def test_propagation_delay(self):
        # ~3.336 microseconds per km -> 1000 km is ~3.34 ms.
        assert propagation_delay_ms(1000.0) == pytest.approx(3.336, abs=0.01)
        with pytest.raises(ValueError):
            propagation_delay_ms(-1.0)

    def test_grazing_altitude_of_adjacent_satellites(self):
        a = np.array([EARTH_RADIUS_KM + 560.0, 0.0, 0.0])
        b = np.array([0.0, EARTH_RADIUS_KM + 560.0, 0.0])
        # Quarter-circumference chord between two LEO satellites dips well
        # below the surface.
        assert grazing_altitude_km(a, b) < 0.0

    def test_grazing_altitude_of_close_satellites(self):
        a = np.array([EARTH_RADIUS_KM + 560.0, 0.0, 0.0])
        b = np.array([EARTH_RADIUS_KM + 560.0, 500.0, 0.0])
        assert grazing_altitude_km(a, b) > 500.0

    def test_feasibility_range_limit(self):
        a = np.array([EARTH_RADIUS_KM + 560.0, 0.0, 0.0])
        b = np.array([EARTH_RADIUS_KM + 560.0, 6000.0, 0.0])
        assert not isl_feasible(a, b, ISLConfig(max_range_km=5000.0))
        assert isl_feasible(a, b, ISLConfig(max_range_km=8000.0, min_grazing_altitude_km=80.0))

    def test_feasibility_occlusion_limit(self):
        a = np.array([EARTH_RADIUS_KM + 560.0, 0.0, 0.0])
        b = np.array([-(EARTH_RADIUS_KM + 560.0), 0.0, 1.0])
        assert not isl_feasible(a, b, ISLConfig(max_range_km=50000.0))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ISLConfig(max_range_km=-1.0)
        with pytest.raises(ValueError):
            ISLConfig(capacity_gbps=0.0)


class TestGroundStation:
    def test_default_stations_from_metros(self):
        stations = default_ground_stations(min_population_millions=10.0)
        names = {station.name for station in stations}
        assert "Tokyo" in names
        assert len(stations) >= 20

    def test_overhead_satellite_visible(self):
        station = GroundStation("test", 10.0, 20.0)
        overhead = station.position_ecef_km() * (EARTH_RADIUS_KM + 560.0) / EARTH_RADIUS_KM
        assert station.can_see(overhead)
        assert math.degrees(station.elevation_to_rad(overhead)) == pytest.approx(90.0, abs=1e-6)

    def test_antipodal_satellite_not_visible(self):
        station = GroundStation("test", 10.0, 20.0)
        antipode = -station.position_ecef_km() * 1.1
        assert not station.can_see(antipode)

    def test_uplink_delay_positive(self):
        station = GroundStation("test", 0.0, 0.0)
        overhead = station.position_ecef_km() * (EARTH_RADIUS_KM + 560.0) / EARTH_RADIUS_KM
        assert station.uplink_delay_ms(overhead) == pytest.approx(
            propagation_delay_ms(560.0), rel=1e-6
        )

    def test_visible_satellites_vectorised(self):
        station = GroundStation("test", 0.0, 0.0)
        overhead = station.position_ecef_km() * (EARTH_RADIUS_KM + 560.0) / EARTH_RADIUS_KM
        antipode = -overhead
        indices = visible_satellites(station, np.stack([overhead, antipode]))
        assert list(indices) == [0]

    def test_visible_satellites_shape_validation(self):
        station = GroundStation("test", 0.0, 0.0)
        with pytest.raises(ValueError):
            visible_satellites(station, np.zeros(3))
