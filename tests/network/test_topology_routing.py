"""Tests of topology construction and routing."""

from __future__ import annotations

import pytest

from repro.coverage.walker import WalkerDelta
from repro.network.ground_station import GroundStation
from repro.network.routing import RouteResult, SnapshotRouter, TimeAwareRouter
from repro.network.topology import ConstellationTopology


@pytest.fixture(scope="module")
def walker_topology(epoch) -> ConstellationTopology:
    wd = WalkerDelta(
        altitude_km=560.0, inclination_deg=65.0, total_satellites=200, planes=10, phasing=1
    )
    elements = wd.satellite_elements()
    per_plane = wd.satellites_per_plane
    planes = [elements[i * per_plane : (i + 1) * per_plane] for i in range(wd.planes)]
    return ConstellationTopology(planes=planes, epoch=epoch)


@pytest.fixture(scope="module")
def stations() -> list[GroundStation]:
    return [
        GroundStation("London", 51.5, -0.1),
        GroundStation("New York", 40.7, -74.0),
        GroundStation("Tokyo", 35.7, 139.7),
    ]


class TestTopology:
    def test_node_count(self, walker_topology):
        assert walker_topology.satellite_count == 200
        assert walker_topology.plane_count == 10

    def test_requires_non_empty_planes(self, epoch):
        with pytest.raises(ValueError):
            ConstellationTopology(planes=[[]], epoch=epoch)

    def test_snapshot_graph_basics(self, walker_topology, stations):
        graph = walker_topology.snapshot_graph(ground_stations=stations)
        satellite_nodes = [n for n, d in graph.nodes(data=True) if d["kind"] == "satellite"]
        ground_nodes = [n for n, d in graph.nodes(data=True) if d["kind"] == "ground"]
        assert len(satellite_nodes) == 200
        assert len(ground_nodes) == 3
        # +Grid: every satellite has at least its two intra-plane neighbours.
        degrees = [graph.degree(n) for n in satellite_nodes]
        assert min(degrees) >= 2

    def test_edges_have_attributes(self, walker_topology):
        graph = walker_topology.snapshot_graph()
        for _, _, data in list(graph.edges(data=True))[:20]:
            assert data["distance_km"] > 0
            assert data["delay_ms"] > 0
            assert data["capacity_gbps"] > 0

    def test_ground_stations_connected(self, walker_topology, stations):
        graph = walker_topology.snapshot_graph(ground_stations=stations)
        for station in stations:
            assert graph.degree(f"gs:{station.name}") >= 1


class TestSnapshotSequences:
    def test_snapshot_graphs_match_per_epoch_graphs(self, walker_topology, stations, epoch):
        epochs = [epoch.add_seconds(t) for t in (0.0, 120.0, 240.0)]
        batched = walker_topology.snapshot_graphs(epochs, stations)
        for at, graph in zip(epochs, batched):
            reference = walker_topology.snapshot_graph(at, stations)
            assert set(graph.nodes) == set(reference.nodes)
            assert set(map(frozenset, graph.edges)) == set(map(frozenset, reference.edges))

    def test_time_aware_snapshot_count_exact(self, walker_topology, stations, epoch):
        router = TimeAwareRouter(
            topology=walker_topology, ground_stations=stations, step_s=60.0
        )
        assert len(router.snapshots(epoch, 600.0)) == 10
        # Regression: float accumulation used to add an eleventh snapshot
        # when step_s does not sum exactly to the duration.
        router_fractional = TimeAwareRouter(
            topology=walker_topology, ground_stations=stations, step_s=0.1
        )
        assert len(router_fractional.snapshots(epoch, 1.0)) == 10

    def test_snapshot_validation(self, walker_topology, stations, epoch):
        router = TimeAwareRouter(topology=walker_topology, ground_stations=stations)
        with pytest.raises(ValueError):
            router.snapshots(epoch, 0.0)


class TestRouting:
    def test_route_between_stations(self, walker_topology, stations):
        graph = walker_topology.snapshot_graph(ground_stations=stations)
        router = SnapshotRouter(graph)
        result = router.route_between_stations(stations[0], stations[1])
        assert result.reachable
        assert result.hop_count >= 2
        # London-New York over LEO: a few tens of milliseconds one way.
        assert 15.0 <= result.latency_ms <= 120.0

    def test_latency_at_least_geodesic(self, walker_topology, stations):
        graph = walker_topology.snapshot_graph(ground_stations=stations)
        router = SnapshotRouter(graph)
        result = router.route_between_stations(stations[0], stations[2])
        # Great-circle London-Tokyo is ~9600 km -> >= 32 ms at light speed.
        assert result.latency_ms >= 30.0

    def test_unknown_node_unreachable(self, walker_topology):
        graph = walker_topology.snapshot_graph()
        router = SnapshotRouter(graph)
        result = router.route("gs:Nowhere", 0)
        assert not result.reachable
        assert result == RouteResult.unreachable()

    def test_time_aware_router_availability(self, walker_topology, stations, epoch):
        router = TimeAwareRouter(
            topology=walker_topology, ground_stations=stations, step_s=300.0
        )
        results = router.route_over_time(stations[0], stations[1], epoch, duration_s=900.0)
        assert len(results) == 3
        availability = TimeAwareRouter.availability(results)
        assert 0.0 <= availability <= 1.0
        assert TimeAwareRouter.path_changes(results) >= 0

    def test_time_aware_router_validation(self, walker_topology, stations, epoch):
        router = TimeAwareRouter(topology=walker_topology, ground_stations=stations)
        with pytest.raises(ValueError):
            router.snapshots(epoch, duration_s=0.0)
        with pytest.raises(ValueError):
            TimeAwareRouter.availability([])
