"""Integration test of the time-stepped network simulator."""

from __future__ import annotations

import pytest

from repro.coverage.walker import WalkerDelta
from repro.demand.traffic_matrix import City, GravityTrafficModel
from repro.network.ground_station import GroundStation
from repro.network.simulation import NetworkSimulator
from repro.network.topology import ConstellationTopology


@pytest.fixture(scope="module")
def simulator(epoch) -> NetworkSimulator:
    wd = WalkerDelta(
        altitude_km=560.0, inclination_deg=65.0, total_satellites=240, planes=12, phasing=1
    )
    elements = wd.satellite_elements()
    per_plane = wd.satellites_per_plane
    planes = [elements[i * per_plane : (i + 1) * per_plane] for i in range(wd.planes)]
    topology = ConstellationTopology(planes=planes, epoch=epoch)

    cities = (
        City("London", 51.5, -0.1, 9.6),
        City("New York", 40.7, -74.0, 20.0),
        City("Tokyo", 35.7, 139.7, 37.0),
        City("Sao Paulo", -23.6, -46.6, 22.0),
    )
    stations = [GroundStation(c.name, c.latitude_deg, c.longitude_deg) for c in cities]
    model = GravityTrafficModel(cities=cities, total_demand=40.0)
    return NetworkSimulator(
        topology=topology, ground_stations=stations, traffic_model=model, flows_per_step=12
    )


class TestNetworkSimulator:
    def test_run_produces_steps(self, simulator, epoch):
        result = simulator.run(epoch, duration_hours=3.0, step_hours=1.0)
        assert len(result.steps) == 3

    def test_fractional_step_count_exact(self, simulator, epoch):
        # Regression: `while elapsed < duration: elapsed += step` ran an
        # eleventh step when ten 0.1-hour increments under-accumulated.
        result = simulator.run(epoch, duration_hours=1.0, step_hours=0.1)
        assert len(result.steps) == 10

    def test_statistics_are_sane(self, simulator, epoch):
        result = simulator.run(epoch, duration_hours=2.0, step_hours=1.0)
        for step in result.steps:
            assert step.offered_gbps > 0.0
            assert 0.0 <= step.reachable_fraction <= 1.0
            assert 0.0 <= step.delivery_ratio <= 1.0 + 1e-9
            assert step.worst_link_utilisation <= 1.0 + 1e-9
        assert 0.0 <= result.mean_delivery_ratio() <= 1.0 + 1e-9

    def test_latency_reasonable_when_reachable(self, simulator, epoch):
        result = simulator.run(epoch, duration_hours=2.0, step_hours=1.0)
        latency = result.mean_latency_ms()
        if latency == latency:  # not NaN: at least one reachable pair
            assert 5.0 <= latency <= 400.0

    def test_worst_step_identified(self, simulator, epoch):
        result = simulator.run(epoch, duration_hours=2.0, step_hours=1.0)
        worst = result.worst_step()
        assert worst.delivery_ratio <= result.mean_delivery_ratio() + 1e-9

    def test_validation(self, simulator, epoch):
        with pytest.raises(ValueError):
            simulator.run(epoch, duration_hours=0.0)
