"""Tests of the scenario-sweep engine and its equivalence to single runs."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.coverage.walker import WalkerDelta
from repro.demand.traffic_matrix import City, GravityTrafficModel
from repro.network.ground_station import GroundStation
from repro.network.simulation import NetworkSimulator, Scenario, run_grid
from repro.network.topology import ConstellationTopology

CITIES = (
    City("London", 51.5, -0.1, 9.6),
    City("New York", 40.7, -74.0, 20.0),
    City("Tokyo", 35.7, 139.7, 37.0),
    City("Sao Paulo", -23.6, -46.6, 22.0),
)


@pytest.fixture(scope="module")
def topology(epoch) -> ConstellationTopology:
    wd = WalkerDelta(
        altitude_km=560.0, inclination_deg=65.0, total_satellites=180, planes=10, phasing=1
    )
    elements = wd.satellite_elements()
    per_plane = wd.satellites_per_plane
    planes = [elements[i * per_plane : (i + 1) * per_plane] for i in range(wd.planes)]
    return ConstellationTopology(planes=planes, epoch=epoch)


@pytest.fixture(scope="module")
def stations() -> list[GroundStation]:
    return [GroundStation(c.name, c.latitude_deg, c.longitude_deg) for c in CITIES]


@pytest.fixture(scope="module")
def simulator(topology, stations) -> NetworkSimulator:
    return NetworkSimulator(
        topology=topology,
        ground_stations=stations,
        traffic_model=GravityTrafficModel(cities=CITIES, total_demand=40.0),
        flows_per_step=10,
    )


SCENARIOS = [
    Scenario(name="baseline"),
    Scenario(name="max_min", allocator="max_min"),
    Scenario(name="budget", flows_per_step=4),
    Scenario(name="subset", ground_station_names=("London", "Tokyo", "New York")),
]


class TestScenarioValidation:
    def test_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            Scenario(name="")
        with pytest.raises(ValueError):
            Scenario(name="x", demand_multiplier=0.0)
        with pytest.raises(ValueError):
            Scenario(name="x", demand_multiplier=-2.0)
        with pytest.raises(ValueError):
            Scenario(name="x", demand_multiplier=float("nan"))
        with pytest.raises(ValueError):
            Scenario(name="x", flows_per_step=0)
        with pytest.raises(ValueError):
            Scenario(name="x", allocator="nope")
        with pytest.raises(ValueError):
            Scenario(name="x", backend="nope")
        with pytest.raises(ValueError):
            Scenario(name="x", faults="nope")
        with pytest.raises(ValueError):
            Scenario(name="x", faults=("random_satellite", {"rate": 2.0}))

    def test_rejects_unknown_executor(self, simulator, epoch):
        with pytest.raises(ValueError, match="executor"):
            simulator.run_scenarios([Scenario(name="a")], epoch, 1.0, executor="fleet")

    def test_station_names_normalised_to_tuple(self):
        scenario = Scenario(name="x", ground_station_names=["London", "Tokyo"])
        assert scenario.ground_station_names == ("London", "Tokyo")

    def test_sweep_validation(self, simulator, epoch):
        with pytest.raises(ValueError):
            simulator.run_scenarios([], epoch, 1.0)
        with pytest.raises(ValueError):
            simulator.run_scenarios([Scenario(name="a"), Scenario(name="a")], epoch, 1.0)
        with pytest.raises(ValueError):
            simulator.run_scenarios([Scenario(name="a")], epoch, 0.0)
        with pytest.raises(ValueError):
            simulator.run_scenarios(
                [Scenario(name="a", ground_station_names=("Atlantis",))], epoch, 1.0
            )


class TestSweepEquivalence:
    def test_sweep_matches_independent_runs(self, simulator, topology, stations, epoch):
        """Four scenarios through one sweep == four independent run() calls."""
        sweep = simulator.run_scenarios(SCENARIOS, epoch, duration_hours=3.0)
        assert list(sweep) == [scenario.name for scenario in SCENARIOS]

        model = simulator.traffic_model
        independent = {
            "baseline": simulator.run(epoch, 3.0),
            "max_min": simulator.run(epoch, 3.0, allocator="max_min"),
            "budget": NetworkSimulator(
                topology=topology,
                ground_stations=stations,
                traffic_model=model,
                flows_per_step=4,
            ).run(epoch, 3.0),
            "subset": NetworkSimulator(
                topology=topology,
                ground_stations=[
                    s for s in stations if s.name in ("London", "Tokyo", "New York")
                ],
                traffic_model=model,
                flows_per_step=10,
            ).run(epoch, 3.0),
        }
        for name, reference in independent.items():
            assert sweep[name].steps == reference.steps

    def test_parallel_sweep_matches_serial(self, simulator, epoch):
        serial = simulator.run_scenarios(SCENARIOS, epoch, duration_hours=2.0)
        threaded = simulator.run_scenarios(
            SCENARIOS, epoch, duration_hours=2.0, max_workers=4
        )
        for name in serial:
            assert serial[name].steps == threaded[name].steps

    def test_demand_multiplier_scales_offered_traffic(self, simulator, epoch):
        sweep = simulator.run_scenarios(
            [Scenario(name="x1"), Scenario(name="x3", demand_multiplier=3.0)],
            epoch,
            duration_hours=2.0,
        )
        for light, heavy in zip(sweep["x1"].steps, sweep["x3"].steps):
            assert heavy.offered_gbps == pytest.approx(3.0 * light.offered_gbps)
            assert heavy.delivered_gbps <= 3.0 * light.delivered_gbps + 1e-9

    def test_run_is_a_single_scenario_sweep(self, simulator, epoch):
        single = simulator.run(epoch, duration_hours=2.0)
        sweep = simulator.run_scenarios([Scenario(name="only")], epoch, duration_hours=2.0)
        assert single.steps == sweep["only"].steps


def _assert_step_stats_match(steps_a, steps_b):
    """Per-step statistics must agree to float round-off."""
    assert len(steps_a) == len(steps_b)
    for a, b in zip(steps_a, steps_b):
        assert a.utc_hour == b.utc_hour
        assert a.offered_gbps == pytest.approx(b.offered_gbps, rel=1e-12)
        assert a.delivered_gbps == pytest.approx(b.delivered_gbps, rel=1e-9)
        assert a.reachable_fraction == b.reachable_fraction
        if a.mean_latency_ms != b.mean_latency_ms:  # inf compares equal to inf
            assert a.mean_latency_ms == pytest.approx(b.mean_latency_ms, rel=1e-9)
        assert a.worst_link_utilisation == pytest.approx(
            b.worst_link_utilisation, rel=1e-9
        )


class TestBackendSweeps:
    """The csgraph backend must reproduce the networkx backend's sweep
    statistics -- delivery ratios, latencies, reachability -- exactly."""

    def test_csgraph_sweep_matches_networkx(self, simulator, epoch):
        reference = simulator.run_scenarios(SCENARIOS, epoch, duration_hours=3.0)
        candidate = simulator.run_scenarios(
            SCENARIOS, epoch, duration_hours=3.0, backend="csgraph"
        )
        for name in reference:
            _assert_step_stats_match(reference[name].steps, candidate[name].steps)
            assert candidate[name].mean_delivery_ratio() == pytest.approx(
                reference[name].mean_delivery_ratio(), rel=1e-9
            )

    def test_per_scenario_backend_override(self, simulator, epoch):
        mixed = simulator.run_scenarios(
            [Scenario(name="nx"), Scenario(name="cs", backend="csgraph")],
            epoch,
            duration_hours=2.0,
        )
        _assert_step_stats_match(mixed["nx"].steps, mixed["cs"].steps)

    def test_run_accepts_backend(self, simulator, epoch):
        reference = simulator.run(epoch, duration_hours=2.0)
        candidate = simulator.run(epoch, duration_hours=2.0, backend="csgraph")
        _assert_step_stats_match(reference.steps, candidate.steps)


class TestProcessExecutor:
    def test_process_sweep_matches_serial_csgraph_exactly(self, simulator, epoch):
        """csgraph routing is pure array math on identical inputs, so the
        process pool must reproduce the serial sweep bit for bit."""
        serial = simulator.run_scenarios(
            SCENARIOS, epoch, duration_hours=2.0, backend="csgraph"
        )
        pooled = simulator.run_scenarios(
            SCENARIOS,
            epoch,
            duration_hours=2.0,
            backend="csgraph",
            max_workers=2,
            executor="process",
        )
        for name in serial:
            assert pooled[name].steps == serial[name].steps

    def test_process_sweep_matches_serial_networkx(self, simulator, epoch):
        serial = simulator.run_scenarios(SCENARIOS, epoch, duration_hours=2.0)
        pooled = simulator.run_scenarios(
            SCENARIOS,
            epoch,
            duration_hours=2.0,
            max_workers=2,
            executor="process",
        )
        for name in serial:
            _assert_step_stats_match(serial[name].steps, pooled[name].steps)

    def test_process_rejects_unregistered_backend_instances(self, simulator, epoch):
        """Workers resolve backends by registry name, so an unregistered
        instance must be refused up front instead of being silently swapped
        for the registered backend of the same name."""
        from repro.network.backends import CSGraphBackend

        rogue = CSGraphBackend()  # same name as the registered singleton
        with pytest.raises(ValueError, match="not registered"):
            simulator.run_scenarios(
                [Scenario(name="a")],
                epoch,
                1.0,
                backend=rogue,
                max_workers=2,
                executor="process",
            )

    def test_single_worker_process_request_falls_back_to_serial(
        self, simulator, epoch
    ):
        result = simulator.run_scenarios(
            [Scenario(name="only")],
            epoch,
            duration_hours=1.0,
            max_workers=1,
            executor="process",
        )
        reference = simulator.run(epoch, duration_hours=1.0)
        assert result["only"].steps == reference.steps


class TestRunGrid:
    def test_grid_cells_match_per_design_sweeps(
        self, topology, stations, epoch, tmp_path
    ):
        model = GravityTrafficModel(cities=CITIES, total_demand=40.0)
        small = ConstellationTopology(
            planes=topology.planes[:5], epoch=epoch, isl_config=topology.isl_config
        )
        designs = {"full": topology, "half": small}
        scenarios = [Scenario(name="base"), Scenario(name="heavy", demand_multiplier=2.0)]
        output = tmp_path / "grid.json"
        cells = run_grid(
            designs,
            scenarios,
            stations,
            epoch,
            duration_hours=2.0,
            traffic_model=model,
            flows_per_step=6,
            backend="csgraph",
            output_path=output,
        )
        assert set(cells) == {
            ("full", "base"),
            ("full", "heavy"),
            ("half", "base"),
            ("half", "heavy"),
        }
        for design_name, design in designs.items():
            simulator = NetworkSimulator(
                topology=design,
                ground_stations=stations,
                traffic_model=model,
                flows_per_step=6,
            )
            sweep = simulator.run_scenarios(
                scenarios, epoch, duration_hours=2.0, backend="csgraph"
            )
            for scenario in scenarios:
                assert cells[(design_name, scenario.name)].steps == sweep[
                    scenario.name
                ].steps

        document = json.loads(output.read_text())
        assert document["designs"] == ["full", "half"]
        assert document["scenarios"] == ["base", "heavy"]
        assert len(document["cells"]) == 4
        by_key = {
            (cell["design"], cell["scenario"]): cell for cell in document["cells"]
        }
        for key, result in cells.items():
            cell = by_key[key]
            assert cell["mean_delivery_ratio"] == pytest.approx(
                result.mean_delivery_ratio()
            )
            assert len(cell["steps"]) == len(result.steps)
            assert cell["steps"][0]["offered_gbps"] == pytest.approx(
                result.steps[0].offered_gbps
            )

    def test_grid_requires_designs(self, stations, epoch):
        with pytest.raises(ValueError):
            run_grid({}, [Scenario(name="a")], stations, epoch, 1.0)

    def test_grid_json_stays_strict_with_unreachable_steps(
        self, topology, epoch, tmp_path
    ):
        """Unroutable flows leave inf/nan latencies; the persisted JSON must
        encode them as null, not the non-standard Infinity/NaN tokens."""
        cities = (CITIES[0], City("Blind", 0.0, 0.0, 10.0))
        stations = [
            GroundStation(CITIES[0].name, CITIES[0].latitude_deg, CITIES[0].longitude_deg),
            # A near-vertical mask keeps this endpoint satellite-less.
            GroundStation("Blind", 0.0, 0.0, min_elevation_deg=89.9),
        ]
        output = tmp_path / "grid.json"
        cells = run_grid(
            {"only": topology},
            [Scenario(name="s")],
            stations,
            epoch,
            duration_hours=1.0,
            traffic_model=GravityTrafficModel(cities=cities, total_demand=10.0),
            flows_per_step=4,
            output_path=output,
        )
        assert all(
            not np.isfinite(step.mean_latency_ms)
            for step in cells[("only", "s")].steps
        )
        document = json.loads(
            output.read_text(),
            parse_constant=lambda token: pytest.fail(
                f"non-strict JSON token {token!r} in grid file"
            ),
        )
        cell = document["cells"][0]
        assert cell["mean_latency_ms"] is None
        assert all(step["mean_latency_ms"] is None for step in cell["steps"])


class TestTrafficMatrixCache:
    def test_diurnal_matrices_built_once_per_distinct_hour(self, topology, stations, epoch):
        class CountingModel(GravityTrafficModel):
            calls = 0

            def matrix_at(self, utc_hour):
                type(self).calls += 1
                return super().matrix_at(utc_hour)

        model = CountingModel(cities=CITIES, total_demand=40.0)
        simulator = NetworkSimulator(
            topology=topology,
            ground_stations=stations,
            traffic_model=model,
            flows_per_step=4,
        )
        # Two full days at 1-hour steps: 48 steps but only 24 distinct hours.
        simulator.run(epoch, duration_hours=48.0, step_hours=1.0)
        assert CountingModel.calls == 24
