"""Tests of the scenario-sweep engine and its equivalence to single runs."""

from __future__ import annotations

import pytest

from repro.coverage.walker import WalkerDelta
from repro.demand.traffic_matrix import City, GravityTrafficModel
from repro.network.ground_station import GroundStation
from repro.network.simulation import NetworkSimulator, Scenario
from repro.network.topology import ConstellationTopology

CITIES = (
    City("London", 51.5, -0.1, 9.6),
    City("New York", 40.7, -74.0, 20.0),
    City("Tokyo", 35.7, 139.7, 37.0),
    City("Sao Paulo", -23.6, -46.6, 22.0),
)


@pytest.fixture(scope="module")
def topology(epoch) -> ConstellationTopology:
    wd = WalkerDelta(
        altitude_km=560.0, inclination_deg=65.0, total_satellites=180, planes=10, phasing=1
    )
    elements = wd.satellite_elements()
    per_plane = wd.satellites_per_plane
    planes = [elements[i * per_plane : (i + 1) * per_plane] for i in range(wd.planes)]
    return ConstellationTopology(planes=planes, epoch=epoch)


@pytest.fixture(scope="module")
def stations() -> list[GroundStation]:
    return [GroundStation(c.name, c.latitude_deg, c.longitude_deg) for c in CITIES]


@pytest.fixture(scope="module")
def simulator(topology, stations) -> NetworkSimulator:
    return NetworkSimulator(
        topology=topology,
        ground_stations=stations,
        traffic_model=GravityTrafficModel(cities=CITIES, total_demand=40.0),
        flows_per_step=10,
    )


SCENARIOS = [
    Scenario(name="baseline"),
    Scenario(name="max_min", allocator="max_min"),
    Scenario(name="budget", flows_per_step=4),
    Scenario(name="subset", ground_station_names=("London", "Tokyo", "New York")),
]


class TestScenarioValidation:
    def test_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            Scenario(name="")
        with pytest.raises(ValueError):
            Scenario(name="x", demand_multiplier=0.0)
        with pytest.raises(ValueError):
            Scenario(name="x", flows_per_step=0)
        with pytest.raises(ValueError):
            Scenario(name="x", allocator="nope")

    def test_station_names_normalised_to_tuple(self):
        scenario = Scenario(name="x", ground_station_names=["London", "Tokyo"])
        assert scenario.ground_station_names == ("London", "Tokyo")

    def test_sweep_validation(self, simulator, epoch):
        with pytest.raises(ValueError):
            simulator.run_scenarios([], epoch, 1.0)
        with pytest.raises(ValueError):
            simulator.run_scenarios([Scenario(name="a"), Scenario(name="a")], epoch, 1.0)
        with pytest.raises(ValueError):
            simulator.run_scenarios([Scenario(name="a")], epoch, 0.0)
        with pytest.raises(ValueError):
            simulator.run_scenarios(
                [Scenario(name="a", ground_station_names=("Atlantis",))], epoch, 1.0
            )


class TestSweepEquivalence:
    def test_sweep_matches_independent_runs(self, simulator, topology, stations, epoch):
        """Four scenarios through one sweep == four independent run() calls."""
        sweep = simulator.run_scenarios(SCENARIOS, epoch, duration_hours=3.0)
        assert list(sweep) == [scenario.name for scenario in SCENARIOS]

        model = simulator.traffic_model
        independent = {
            "baseline": simulator.run(epoch, 3.0),
            "max_min": simulator.run(epoch, 3.0, allocator="max_min"),
            "budget": NetworkSimulator(
                topology=topology,
                ground_stations=stations,
                traffic_model=model,
                flows_per_step=4,
            ).run(epoch, 3.0),
            "subset": NetworkSimulator(
                topology=topology,
                ground_stations=[
                    s for s in stations if s.name in ("London", "Tokyo", "New York")
                ],
                traffic_model=model,
                flows_per_step=10,
            ).run(epoch, 3.0),
        }
        for name, reference in independent.items():
            assert sweep[name].steps == reference.steps

    def test_parallel_sweep_matches_serial(self, simulator, epoch):
        serial = simulator.run_scenarios(SCENARIOS, epoch, duration_hours=2.0)
        threaded = simulator.run_scenarios(
            SCENARIOS, epoch, duration_hours=2.0, max_workers=4
        )
        for name in serial:
            assert serial[name].steps == threaded[name].steps

    def test_demand_multiplier_scales_offered_traffic(self, simulator, epoch):
        sweep = simulator.run_scenarios(
            [Scenario(name="x1"), Scenario(name="x3", demand_multiplier=3.0)],
            epoch,
            duration_hours=2.0,
        )
        for light, heavy in zip(sweep["x1"].steps, sweep["x3"].steps):
            assert heavy.offered_gbps == pytest.approx(3.0 * light.offered_gbps)
            assert heavy.delivered_gbps <= 3.0 * light.delivered_gbps + 1e-9

    def test_run_is_a_single_scenario_sweep(self, simulator, epoch):
        single = simulator.run(epoch, duration_hours=2.0)
        sweep = simulator.run_scenarios([Scenario(name="only")], epoch, duration_hours=2.0)
        assert single.steps == sweep["only"].steps


class TestTrafficMatrixCache:
    def test_diurnal_matrices_built_once_per_distinct_hour(self, topology, stations, epoch):
        class CountingModel(GravityTrafficModel):
            calls = 0

            def matrix_at(self, utc_hour):
                type(self).calls += 1
                return super().matrix_at(utc_hour)

        model = CountingModel(cities=CITIES, total_demand=40.0)
        simulator = NetworkSimulator(
            topology=topology,
            ground_stations=stations,
            traffic_model=model,
            flows_per_step=4,
        )
        # Two full days at 1-hour steps: 48 steps but only 24 distinct hours.
        simulator.run(epoch, duration_hours=48.0, step_hours=1.0)
        assert CountingModel.calls == 24
