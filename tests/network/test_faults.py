"""Tests of the fault-injection subsystem: specs, schedules, masked
sequences, sweep equivalence across executors/backends, and resilience
metrics."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.coverage.walker import WalkerDelta
from repro.demand.traffic_matrix import City, GravityTrafficModel
from repro.network import simulation as simulation_module
from repro.network.faults import (
    FAULT_MODELS,
    FaultContext,
    FaultSchedule,
    FaultSpec,
    compile_faults,
    get_fault_model,
)
from repro.network.ground_station import GroundStation
from repro.network.simulation import NetworkSimulator, Scenario
from repro.network.topology import ConstellationTopology, MultiShellTopology
from repro.orbits.time import epoch_range

CITIES = (
    City("London", 51.5, -0.1, 9.6),
    City("New York", 40.7, -74.0, 20.0),
    City("Tokyo", 35.7, 139.7, 37.0),
)

STATION_NAMES = tuple(city.name for city in CITIES)


def _walker_topology(epoch, satellites=60, planes=5) -> ConstellationTopology:
    wd = WalkerDelta(
        altitude_km=560.0,
        inclination_deg=65.0,
        total_satellites=satellites,
        planes=planes,
        phasing=1,
    )
    elements = wd.satellite_elements()
    per_plane = wd.satellites_per_plane
    return ConstellationTopology(
        planes=[elements[i * per_plane : (i + 1) * per_plane] for i in range(wd.planes)],
        epoch=epoch,
    )


@pytest.fixture(scope="module")
def topology(epoch) -> ConstellationTopology:
    return _walker_topology(epoch)


@pytest.fixture(scope="module")
def stations() -> list[GroundStation]:
    return [GroundStation(c.name, c.latitude_deg, c.longitude_deg) for c in CITIES]


@pytest.fixture(scope="module")
def context(topology, epoch) -> FaultContext:
    epochs = epoch_range(epoch, 4 * 3600.0, 3600.0)
    return FaultContext(topology, epochs, STATION_NAMES)


@pytest.fixture(scope="module")
def simulator(topology, stations) -> NetworkSimulator:
    return NetworkSimulator(
        topology=topology,
        ground_stations=stations,
        traffic_model=GravityTrafficModel(cities=CITIES, total_demand=40.0),
        flows_per_step=8,
    )


class TestFaultSpecValidation:
    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown fault model"):
            FaultSpec("meteor_strike")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown parameters"):
            FaultSpec("random_satellite", {"probability": 0.1})

    def test_malformed_parameter_values_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec("random_satellite", {"rate": 1.5})
        with pytest.raises(ValueError, match="duration_steps"):
            FaultSpec("random_satellite", {"duration_steps": 0})
        with pytest.raises(ValueError, match="scope"):
            FaultSpec("plane_outage", {"scope": "hemisphere"})
        with pytest.raises(ValueError, match="requires either"):
            FaultSpec("station_outage")
        with pytest.raises(ValueError, match="factor"):
            FaultSpec("link_degradation", {"factor": -0.5})
        with pytest.raises(ValueError, match="saa_boost"):
            FaultSpec("radiation", {"saa_boost": 0.2})

    def test_specs_hash_and_compare_by_value(self):
        a = FaultSpec("plane_outage", {"count": 2, "seed": 5})
        b = FaultSpec("plane_outage", {"seed": 5, "count": 2})
        assert a == b
        assert hash(a) == hash(b)
        assert a != FaultSpec("plane_outage", {"count": 2, "seed": 6})

    def test_registry_names(self):
        assert set(FAULT_MODELS) == {
            "random_satellite",
            "plane_outage",
            "radiation",
            "station_outage",
            "link_degradation",
        }
        with pytest.raises(ValueError, match="available"):
            get_fault_model("nope")


class TestScenarioFaultValidation:
    def test_faults_normalised_from_friendly_forms(self):
        by_name = Scenario(name="a", faults="random_satellite")
        assert by_name.faults == (FaultSpec("random_satellite"),)
        by_pair = Scenario(name="b", faults=("plane_outage", {"count": 2}))
        assert by_pair.faults == (FaultSpec("plane_outage", {"count": 2}),)
        by_list = Scenario(
            name="c",
            faults=[FaultSpec("random_satellite"), ("plane_outage", {"count": 1})],
        )
        assert len(by_list.faults) == 2
        assert Scenario(name="d", faults=[]).faults is None
        assert Scenario(name="e").faults is None

    def test_malformed_faults_rejected_at_construction(self):
        with pytest.raises(ValueError, match="malformed fault spec"):
            Scenario(name="a", faults=123)
        with pytest.raises(ValueError, match="malformed fault spec"):
            Scenario(name="a", faults=[("plane_outage", 2)])
        with pytest.raises(ValueError, match="unknown fault model"):
            Scenario(name="a", faults="meteor_strike")
        with pytest.raises(ValueError, match="unknown parameters"):
            Scenario(name="a", faults=("random_satellite", {"probability": 0.5}))

    def test_nan_and_negative_demand_multiplier_rejected(self):
        with pytest.raises(ValueError, match="demand_multiplier"):
            Scenario(name="a", demand_multiplier=-1.0)
        with pytest.raises(ValueError, match="demand_multiplier"):
            Scenario(name="a", demand_multiplier=float("nan"))


class TestScheduleCompilation:
    def test_fixed_seed_compilation_is_deterministic(self, context):
        spec = FaultSpec("random_satellite", {"rate": 0.2, "seed": 11})
        first = compile_faults((spec,), context)
        second = compile_faults((spec,), context)
        assert np.array_equal(first.satellite_up, second.satellite_up)
        assert np.array_equal(first.satellite_factor, second.satellite_factor)
        assert np.array_equal(first.station_up, second.station_up)
        other = compile_faults(
            (FaultSpec("random_satellite", {"rate": 0.2, "seed": 12}),), context
        )
        assert not np.array_equal(first.satellite_up, other.satellite_up)

    def test_plane_outage_kills_whole_planes_in_window(self, context, topology):
        spec = FaultSpec(
            "plane_outage",
            {"groups": [0, 2], "start_step": 1, "duration_steps": 2},
        )
        schedule = compile_faults((spec,), context)
        planes = np.array([node.plane_index for node in topology.nodes])
        member = np.isin(planes, [0, 2])
        assert schedule.satellite_up[0].all()
        assert schedule.satellite_up[3].all()
        for step in (1, 2):
            assert not schedule.satellite_up[step, member].any()
            assert schedule.satellite_up[step, ~member].all()
        assert schedule.satellites_up_fraction(1) == pytest.approx(
            1.0 - member.mean()
        )

    def test_shell_scope_uses_shell_membership(self, epoch):
        shells = MultiShellTopology(
            shells=[_walker_topology(epoch, 20, 2), _walker_topology(epoch, 20, 2)]
        )
        context = FaultContext(shells, epoch_range(epoch, 2 * 3600.0, 3600.0), ())
        schedule = compile_faults(
            (FaultSpec("plane_outage", {"scope": "shell", "groups": [1]}),), context
        )
        assert schedule.satellite_up[:, :20].all()
        assert not schedule.satellite_up[:, 20:].any()

    def test_station_maintenance_windows_are_periodic_and_staggered(self, context):
        spec = FaultSpec(
            "station_outage",
            {
                "period_steps": 4,
                "duration_steps": 1,
                "stagger_steps": 1,
                "stations": ["London", "Tokyo"],
            },
        )
        schedule = compile_faults((spec,), context)
        london = schedule.station_column("London")
        tokyo = schedule.station_column("Tokyo")
        new_york = schedule.station_column("New York")
        assert not schedule.station_up[0, london]
        assert schedule.station_up[1:4, london].all()
        assert not schedule.station_up[1, tokyo]
        assert schedule.station_up[:, new_york].all()
        assert schedule.stations_up_fraction(0, ("London", "Tokyo")) == 0.5

    def test_link_degradation_sets_capacity_factors(self, context):
        spec = FaultSpec(
            "link_degradation",
            {"satellites": [3, 7], "factor": 0.25, "start_step": 1},
        )
        schedule = compile_faults((spec,), context)
        assert schedule.satellite_factor[0].min() == 1.0
        assert schedule.satellite_factor[1, 3] == 0.25
        assert schedule.satellite_factor[1, 7] == 0.25
        assert schedule.satellite_up.all()  # degradation never kills nodes

    def test_radiation_model_degrades_high_fluence_satellites(self, context):
        spec = FaultSpec(
            "radiation",
            {
                "base_rate": 0.05,
                "degraded_fraction": 0.25,
                "degraded_factor": 0.5,
                "exposure_step_s": 300.0,
                "seed": 2,
            },
        )
        schedule = compile_faults((spec,), context)
        degraded = schedule.satellite_factor[0] < 1.0
        # Roughly the top fluence quartile is degraded (ties may widen it).
        assert degraded.mean() >= 0.2
        assert (schedule.satellite_factor[0][degraded] == 0.5).all()
        # Deterministic: recompiling reproduces the same outages.
        again = compile_faults((spec,), context)
        assert np.array_equal(schedule.satellite_up, again.satellite_up)

    def test_specs_compose_and_schedules_combine(self, context):
        combined = compile_faults(
            (
                FaultSpec("plane_outage", {"groups": [0]}),
                FaultSpec("link_degradation", {"satellites": [20], "factor": 0.5}),
            ),
            context,
        )
        assert not combined.satellite_up[:, 0].any()
        assert (combined.satellite_factor[:, 20] == 0.5).all()
        halves = compile_faults(
            (FaultSpec("link_degradation", {"satellites": [20], "factor": 0.5}),),
            context,
        )
        doubled = halves.combined(halves)
        assert (doubled.satellite_factor[:, 20] == 0.25).all()

    def test_compile_faults_of_nothing_is_none(self, context):
        assert compile_faults(None, context) is None
        assert compile_faults((), context) is None

    def test_oversized_plane_count_is_rejected(self, context):
        """count beyond the topology's plane count must fail loudly, not
        silently simulate a weaker correlated failure."""
        with pytest.raises(ValueError, match="exceeds"):
            compile_faults((FaultSpec("plane_outage", {"count": 99}),), context)
        with pytest.raises(ValueError, match="out of range"):
            compile_faults((FaultSpec("plane_outage", {"groups": [99]}),), context)

    def test_with_stations_shares_derived_caches(self, context):
        derived = context.with_stations(("London",))
        assert derived.station_names == ("London",)
        assert derived.group_keys("plane") is context.group_keys("plane")
        assert derived.positions_ecef() is context.positions_ecef()

    def test_healthy_schedule_is_all_up(self, context):
        schedule = FaultSchedule.healthy(3, 10, ("A",))
        assert schedule.satellite_up.all()
        assert schedule.station_up.all()
        assert schedule.satellites_up_fraction(0) == 1.0
        assert schedule.stations_up_fraction(0) == 1.0


class TestMaskedSequences:
    def test_masked_graphs_drop_edges_of_down_nodes(self, topology, stations, epoch, context):
        epochs = epoch_range(epoch, 4 * 3600.0, 3600.0)
        sequence = topology.snapshot_sequence(epochs, stations)
        schedule = compile_faults(
            (
                FaultSpec("plane_outage", {"groups": [1], "start_step": 1, "duration_steps": 1}),
                FaultSpec(
                    "station_outage",
                    {"stations": ["London"], "period_steps": 4, "duration_steps": 1, "offset_steps": 2},
                ),
            ),
            context,
        )
        healthy = list(sequence.graphs(copy=True))
        masked = list(sequence.graphs(copy=True, faults=schedule))
        down = {node.node_id for node in topology.nodes if node.plane_index == 1}
        # Step 0 is untouched; step 1 loses every edge of plane 1; step 2
        # isolates London's ground node.
        assert set(healthy[0].edges) == set(masked[0].edges)
        assert any(a in down or b in down for a, b in healthy[1].edges)
        assert not any(a in down or b in down for a, b in masked[1].edges)
        assert masked[1].has_node(next(iter(down)))  # node stays, edges go
        surviving = set(healthy[1].edges) - {
            (a, b) for a, b in healthy[1].edges if a in down or b in down
        }
        assert set(masked[1].edges) == surviving
        assert masked[2].degree("gs:London") == 0
        assert healthy[2].degree("gs:London") > 0

    def test_masked_edge_list_matches_masked_graph(self, topology, stations, epoch, context):
        epochs = epoch_range(epoch, 4 * 3600.0, 3600.0)
        sequence = topology.snapshot_sequence(epochs, stations)
        schedule = compile_faults(
            (
                FaultSpec("random_satellite", {"rate": 0.2, "seed": 4}),
                FaultSpec("link_degradation", {"fraction": 0.3, "factor": 0.5, "seed": 9}),
            ),
            context,
        )
        for step, graph in enumerate(sequence.graphs(copy=True, faults=schedule)):
            edge_list = sequence.edge_list(step, faults=schedule)
            labels = edge_list.labels
            from_arrays = {
                frozenset((labels[a], labels[b])): capacity
                for a, b, capacity in zip(
                    edge_list.a.tolist(),
                    edge_list.b.tolist(),
                    edge_list.capacity_gbps.tolist(),
                )
            }
            from_graph = {
                frozenset((a, b)): data["capacity_gbps"]
                for a, b, data in graph.edges(data=True)
            }
            assert from_arrays == from_graph

    def test_degraded_capacity_scales_by_worse_endpoint(self, topology, stations, epoch, context):
        epochs = epoch_range(epoch, 4 * 3600.0, 3600.0)
        sequence = topology.snapshot_sequence(epochs, stations)
        schedule = compile_faults(
            (FaultSpec("link_degradation", {"satellites": [0], "factor": 0.5}),),
            context,
        )
        graph = next(sequence.graphs(copy=True, faults=schedule))
        reference = next(sequence.graphs(copy=True))
        for a, b, data in graph.edges(data=True):
            expected = reference.edges[a, b]["capacity_gbps"]
            if 0 in (a, b):
                expected *= 0.5
            assert data["capacity_gbps"] == pytest.approx(expected)
            assert data["delay_ms"] == reference.edges[a, b]["delay_ms"]

    def test_mismatched_schedule_is_rejected(self, topology, stations, epoch):
        epochs = epoch_range(epoch, 3 * 3600.0, 3600.0)
        sequence = topology.snapshot_sequence(epochs, stations)
        wrong_steps = FaultSchedule.healthy(5, topology.satellite_count, STATION_NAMES)
        with pytest.raises(ValueError, match="steps"):
            next(sequence.graphs(faults=wrong_steps))
        wrong_sats = FaultSchedule.healthy(3, 7, STATION_NAMES)
        with pytest.raises(ValueError, match="satellites"):
            sequence.edge_list(0, faults=wrong_sats)
        wrong_stations = FaultSchedule.healthy(3, topology.satellite_count, ("Nowhere",))
        with pytest.raises(ValueError, match="stations"):
            sequence.edge_list(0, faults=wrong_stations)


FAULT_SCENARIOS = [
    Scenario(name="healthy"),
    Scenario(
        name="radiation_plane",
        faults=[
            ("radiation", {"base_rate": 0.04, "exposure_step_s": 300.0, "seed": 3}),
            ("plane_outage", {"count": 2, "start_step": 1, "duration_steps": 2, "seed": 7}),
        ],
    ),
    Scenario(
        name="gs_maintenance",
        faults=("station_outage", {"stations": ["London"], "period_steps": 3, "duration_steps": 1}),
    ),
]


class TestFaultSweeps:
    def test_fault_sweep_is_identical_across_executors_and_backends(self, simulator, epoch):
        """The acceptance criterion: one fixed-seed fault sweep, bit-identical
        results for serial/thread/process executors and both backends."""
        serial = simulator.run_scenarios(
            FAULT_SCENARIOS, epoch, duration_hours=3.0, backend="csgraph"
        )
        threaded = simulator.run_scenarios(
            FAULT_SCENARIOS, epoch, duration_hours=3.0, backend="csgraph", max_workers=3
        )
        pooled = simulator.run_scenarios(
            FAULT_SCENARIOS,
            epoch,
            duration_hours=3.0,
            backend="csgraph",
            max_workers=2,
            executor="process",
        )
        for name in serial:
            assert serial[name].steps == threaded[name].steps
            assert serial[name].steps == pooled[name].steps

        networkx_serial = simulator.run_scenarios(FAULT_SCENARIOS, epoch, duration_hours=3.0)
        networkx_pooled = simulator.run_scenarios(
            FAULT_SCENARIOS, epoch, duration_hours=3.0, max_workers=2, executor="process"
        )
        for name in serial:
            assert networkx_serial[name].steps == networkx_pooled[name].steps
            for ours, reference in zip(serial[name].steps, networkx_serial[name].steps):
                assert ours.offered_gbps == pytest.approx(reference.offered_gbps)
                assert ours.delivered_gbps == pytest.approx(reference.delivered_gbps, rel=1e-9)
                assert ours.stranded_gbps == pytest.approx(reference.stranded_gbps, rel=1e-9)
                assert ours.satellites_up_fraction == reference.satellites_up_fraction
                assert ours.stations_up_fraction == reference.stations_up_fraction

    def test_fault_statistics_reflect_outages(self, simulator, epoch):
        sweep = simulator.run_scenarios(FAULT_SCENARIOS, epoch, duration_hours=3.0)
        healthy = sweep["healthy"]
        faulted = sweep["radiation_plane"]
        maintenance = sweep["gs_maintenance"]
        assert all(step.satellites_up_fraction == 1.0 for step in healthy.steps)
        assert all(step.stations_up_fraction == 1.0 for step in healthy.steps)
        assert min(step.satellites_up_fraction for step in faulted.steps) < 1.0
        # London is down every third step: its entire demand is stranded.
        assert maintenance.steps[0].stations_up_fraction == pytest.approx(2.0 / 3.0)
        assert maintenance.steps[0].stranded_gbps > 0.0
        assert maintenance.steps[1].stations_up_fraction == 1.0

    def test_resilience_metrics(self, simulator, epoch):
        sweep = simulator.run_scenarios(FAULT_SCENARIOS, epoch, duration_hours=3.0)
        healthy = sweep["healthy"]
        faulted = sweep["radiation_plane"]
        assert 0.0 <= faulted.availability(0.5) <= 1.0
        assert faulted.availability(0.0) == 1.0
        assert faulted.mean_stranded_gbps() >= 0.0
        stretch = faulted.latency_stretch(healthy)
        assert np.isnan(stretch) or stretch > 0.0
        recover = faulted.time_to_recover_steps(healthy)
        assert 0 <= recover <= len(faulted.steps)
        assert healthy.time_to_recover_steps(healthy) == 0
        with pytest.raises(ValueError, match="same steps"):
            faulted.latency_stretch(simulation_module.SimulationResult(steps=[]))

    def test_route_cache_resets_per_step_under_faults(self, simulator, epoch, monkeypatch):
        """Fault-perturbed snapshot groups keep their own per-step route
        caches, and every cache is reset at every step -- stale tables from a
        degraded snapshot must never leak into the next one."""
        reset_calls: list[int] = []
        original = simulation_module._SharedRouteCache.reset

        def counting_reset(self):
            reset_calls.append(id(self))
            original(self)

        monkeypatch.setattr(simulation_module._SharedRouteCache, "reset", counting_reset)
        scenarios = [FAULT_SCENARIOS[0], FAULT_SCENARIOS[2]]
        steps = 3
        simulator.run_scenarios(scenarios, epoch, duration_hours=float(steps))
        # Two scenarios with distinct fault specs -> two snapshot groups ->
        # two caches, each reset once per step.
        assert len(set(reset_calls)) == 2
        assert len(reset_calls) == 2 * steps

    def test_faulted_and_healthy_scenarios_share_no_route_tables(self, simulator, epoch):
        """A faulted scenario must not reuse the healthy scenario's routing:
        severing London's station must strand its flows even when a healthy
        scenario with routes through London runs in the same sweep."""
        sweep = simulator.run_scenarios(
            [
                Scenario(name="healthy"),
                Scenario(
                    name="dark_london",
                    faults=("station_outage", {"stations": ["London"], "period_steps": 1, "duration_steps": 1}),
                ),
            ],
            epoch,
            duration_hours=2.0,
        )
        for healthy_step, dark_step in zip(
            sweep["healthy"].steps, sweep["dark_london"].steps
        ):
            assert dark_step.stations_up_fraction == pytest.approx(2.0 / 3.0)
            # Every London flow is stranded in the dark scenario.
            assert dark_step.stranded_gbps >= healthy_step.stranded_gbps

    def test_scenario_results_do_not_depend_on_sweep_composition(
        self, simulator, topology, stations, epoch
    ):
        """A faulted scenario must produce the same result alone, inside a
        larger sweep, and through an independently configured simulator:
        fault schedules compile against the scenario's own station subset,
        never the sweep union."""
        maintenance = Scenario(
            name="maint",
            ground_station_names=("London", "Tokyo"),
            faults=(
                "station_outage",
                {"period_steps": 3, "duration_steps": 1, "stagger_steps": 1, "seed": 2},
            ),
        )
        weather = Scenario(
            name="weather",
            ground_station_names=("London", "Tokyo"),
            faults=("station_outage", {"rate": 0.4, "duration_steps": 1, "seed": 6}),
        )
        alone = simulator.run_scenarios([maintenance, weather], epoch, 3.0)
        # Adding an unrelated scenario widens the sweep's station union
        # (New York joins); the fault scenarios must not notice.
        widened = simulator.run_scenarios(
            [maintenance, weather, Scenario(name="other")], epoch, 3.0
        )
        assert alone["maint"].steps == widened["maint"].steps
        assert alone["weather"].steps == widened["weather"].steps
        independent = NetworkSimulator(
            topology=topology,
            ground_stations=[s for s in stations if s.name in ("London", "Tokyo")],
            traffic_model=simulator.traffic_model,
            flows_per_step=simulator.flows_per_step,
        ).run_scenarios([maintenance, weather], epoch, 3.0)
        assert independent["maint"].steps == alone["maint"].steps
        assert independent["weather"].steps == alone["weather"].steps

    def test_run_grid_carries_fault_scenarios(self, simulator, epoch, tmp_path):
        from repro.network.simulation import run_grid

        output = tmp_path / "grid.json"
        cells = run_grid(
            {"walker": simulator.topology},
            [FAULT_SCENARIOS[0], FAULT_SCENARIOS[2]],
            simulator.ground_stations,
            epoch,
            duration_hours=2.0,
            traffic_model=simulator.traffic_model,
            flows_per_step=8,
            output_path=output,
        )
        assert ("walker", "gs_maintenance") in cells
        assert output.exists()


class TestCompilePathValidation:
    """Regression tests: the direct compile path validates like FaultSpec."""

    def test_direct_compile_rejects_unknown_parameter(self, context):
        model = get_fault_model("random_satellite")
        with pytest.raises(ValueError, match="unknown parameters"):
            model.compile({"probability": 0.1, "seed": 1}, context)

    def test_direct_compile_rejects_malformed_values(self, context):
        model = get_fault_model("random_satellite")
        with pytest.raises(ValueError, match="rate"):
            model.compile({"rate": 1.5, "seed": 1}, context)

    def test_missing_seed_warns_and_defaults_to_zero(self, context):
        from repro.network.faults import MissingSeedWarning

        model = get_fault_model("random_satellite")
        with pytest.warns(MissingSeedWarning):
            implicit = model.compile({"rate": 0.2}, context)
        with warnings.catch_warnings():
            warnings.simplefilter("error", MissingSeedWarning)
            explicit = model.compile({"rate": 0.2, "seed": 0}, context)
        assert np.array_equal(implicit.satellite_up, explicit.satellite_up)

    def test_explicit_seed_compiles_without_warning(self, context):
        from repro.network.faults import MissingSeedWarning

        model = get_fault_model("link_degradation")
        with warnings.catch_warnings():
            warnings.simplefilter("error", MissingSeedWarning)
            schedule = model.compile({"fraction": 0.2, "seed": 3}, context)
        assert schedule.satellite_factor.min() < 1.0
