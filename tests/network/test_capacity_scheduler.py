"""Tests of capacity allocation and the peak-shifting scheduler."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.network.capacity import Flow, allocate_max_min, allocate_proportional
from repro.network.scheduler import PeakShiftScheduler


def _line_graph(capacity: float = 10.0) -> nx.Graph:
    graph = nx.Graph()
    for a, b in ((0, 1), (1, 2), (2, 3)):
        graph.add_edge(a, b, capacity_gbps=capacity, delay_ms=1.0, distance_km=300.0)
    return graph


class TestFlows:
    def test_flow_validation(self):
        with pytest.raises(ValueError):
            Flow(name="bad", path=(0,), demand_gbps=1.0)
        with pytest.raises(ValueError):
            Flow(name="bad", path=(0, 1), demand_gbps=-1.0)

    def test_links(self):
        flow = Flow(name="f", path=(0, 1, 2), demand_gbps=1.0)
        assert flow.links() == [(0, 1), (1, 2)]


class TestProportionalAllocation:
    def test_no_congestion_full_allocation(self):
        graph = _line_graph(10.0)
        flows = [Flow("a", (0, 1, 2), 3.0), Flow("b", (2, 3), 4.0)]
        result = allocate_proportional(graph, flows)
        assert result.allocated_gbps["a"] == pytest.approx(3.0)
        assert result.allocated_gbps["b"] == pytest.approx(4.0)
        assert result.worst_link_utilisation() <= 1.0

    def test_congestion_scales_down(self):
        graph = _line_graph(10.0)
        flows = [Flow("a", (0, 1, 2), 8.0), Flow("b", (1, 2), 8.0)]
        result = allocate_proportional(graph, flows)
        # Link (1,2) carries 16 demand over 10 capacity -> scale 0.625.
        assert result.allocated_gbps["a"] == pytest.approx(5.0)
        assert result.allocated_gbps["b"] == pytest.approx(5.0)
        assert result.worst_link_utilisation() == pytest.approx(1.0)

    def test_unknown_link_rejected(self):
        graph = _line_graph(10.0)
        with pytest.raises(ValueError):
            allocate_proportional(graph, [Flow("a", (0, 3), 1.0)])

    def test_zero_capacity_link_starves_flow(self):
        # Regression: a flow over a capacity-0 link used to be allocated its
        # full demand while the link reported utilisation 0.0.
        graph = _line_graph(10.0)
        graph.edges[1, 2]["capacity_gbps"] = 0.0
        flows = [Flow("dead", (0, 1, 2), 4.0), Flow("live", (0, 1), 6.0)]
        result = allocate_proportional(graph, flows)
        assert result.allocated_gbps["dead"] == 0.0
        assert result.allocated_gbps["live"] == pytest.approx(6.0)
        assert result.link_utilisation[(1, 2)] == 1.0
        # The starved flow must not count against the links it shares either.
        assert result.link_utilisation[(0, 1)] == pytest.approx(0.6)

    def test_zero_capacity_link_without_load_idle(self):
        graph = _line_graph(10.0)
        graph.edges[2, 3]["capacity_gbps"] = 0.0
        flows = [Flow("zero", (2, 3), 0.0), Flow("live", (0, 1), 6.0)]
        result = allocate_proportional(graph, flows)
        assert result.allocated_gbps["live"] == pytest.approx(6.0)
        assert result.link_utilisation[(2, 3)] == 0.0


class TestMaxMinAllocation:
    def test_fair_share_on_shared_link(self):
        graph = _line_graph(10.0)
        flows = [Flow("a", (0, 1, 2), 20.0), Flow("b", (1, 2), 20.0)]
        result = allocate_max_min(graph, flows)
        assert result.allocated_gbps["a"] == pytest.approx(5.0, abs=0.01)
        assert result.allocated_gbps["b"] == pytest.approx(5.0, abs=0.01)

    def test_small_flow_unconstrained(self):
        graph = _line_graph(10.0)
        flows = [Flow("small", (0, 1), 1.0), Flow("big", (0, 1), 100.0)]
        result = allocate_max_min(graph, flows)
        assert result.allocated_gbps["small"] == pytest.approx(1.0, abs=0.01)
        assert result.allocated_gbps["big"] == pytest.approx(9.0, abs=0.05)

    def test_total_not_exceeding_capacity(self):
        graph = _line_graph(10.0)
        flows = [Flow("a", (0, 1, 2, 3), 30.0), Flow("b", (1, 2), 30.0), Flow("c", (2, 3), 2.0)]
        result = allocate_max_min(graph, flows)
        assert result.worst_link_utilisation() <= 1.0 + 1e-6

    def test_zero_capacity_link_reported_saturated(self):
        # Same convention as allocate_proportional: the starved flow gets
        # nothing and the dead link shows up as saturated, not idle.
        graph = _line_graph(10.0)
        graph.edges[1, 2]["capacity_gbps"] = 0.0
        flows = [Flow("dead", (0, 1, 2), 4.0), Flow("live", (0, 1), 6.0)]
        result = allocate_max_min(graph, flows)
        assert result.allocated_gbps["dead"] == pytest.approx(0.0, abs=1e-9)
        assert result.allocated_gbps["live"] == pytest.approx(6.0, abs=0.01)
        assert result.link_utilisation[(1, 2)] == 1.0


class TestScheduler:
    def test_peak_reduced_by_shifting(self):
        scheduler = PeakShiftScheduler(max_delay_slots=4)
        urgent = np.array([1.0, 1.0, 1.0, 5.0, 1.0, 1.0])
        deferrable = np.array([0.0, 0.0, 0.0, 4.0, 0.0, 0.0])
        capacity = np.full(6, 6.0)
        result = scheduler.schedule(urgent, deferrable, capacity)
        assert result.peak_after < result.peak_before
        assert result.dropped == pytest.approx(0.0)
        assert result.peak_reduction_percent > 0.0

    def test_conservation(self):
        scheduler = PeakShiftScheduler(max_delay_slots=6)
        rng = np.random.default_rng(5)
        urgent = rng.uniform(0.0, 2.0, 12)
        deferrable = rng.uniform(0.0, 2.0, 12)
        capacity = np.full(12, 5.0)
        result = scheduler.schedule(urgent, deferrable, capacity)
        served_total = result.served.sum()
        assert served_total + result.dropped == pytest.approx(
            urgent.sum() + deferrable.sum()
        )

    def test_drops_when_capacity_insufficient(self):
        scheduler = PeakShiftScheduler(max_delay_slots=1)
        urgent = np.array([3.0, 3.0, 3.0])
        deferrable = np.array([3.0, 3.0, 3.0])
        capacity = np.array([3.0, 3.0, 3.0])
        result = scheduler.schedule(urgent, deferrable, capacity)
        assert result.dropped > 0.0

    def test_validation(self):
        scheduler = PeakShiftScheduler()
        with pytest.raises(ValueError):
            scheduler.schedule(np.ones(3), np.ones(4), np.ones(3))
        with pytest.raises(ValueError):
            scheduler.schedule(-np.ones(3), np.ones(3), np.ones(3))
