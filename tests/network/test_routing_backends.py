"""Tests of the pluggable routing backends and the CSR snapshot exports."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.coverage.walker import WalkerDelta
from repro.network.backends import (
    BACKENDS,
    CSGraphBackend,
    EdgeArrays,
    NetworkXBackend,
    NodeIndex,
    RoutingBackend,
    edge_arrays_from_graph,
    get_backend,
    graph_from_edge_arrays,
)
from repro.network.ground_station import GroundStation
from repro.network.routing import RouteResult, SnapshotRouter, TimeAwareRouter
from repro.network.topology import ConstellationTopology
from repro.orbits.time import Epoch, epoch_range


def _walker(epoch, satellites, planes, altitude_km=560.0, inclination_deg=65.0):
    wd = WalkerDelta(
        altitude_km=altitude_km,
        inclination_deg=inclination_deg,
        total_satellites=satellites,
        planes=planes,
        phasing=1,
    )
    elements = wd.satellite_elements()
    per_plane = wd.satellites_per_plane
    return ConstellationTopology(
        planes=[elements[i * per_plane : (i + 1) * per_plane] for i in range(wd.planes)],
        epoch=epoch,
    )


def _assert_tables_equivalent(reference, candidate, graph):
    """Two routing tables must agree on reachability and optimal latency.

    Shortest paths need not be unique (a symmetric intra-plane ring ties
    exactly), so instead of demanding identical node sequences the candidate
    path must be *valid* (every hop is a graph edge) and *optimal* (its
    summed delay equals the reference latency).
    """
    assert set(reference) == set(candidate)
    for destination in reference:
        expected = reference[destination]
        actual = candidate[destination]
        assert actual.reachable == expected.reachable
        assert actual.latency_ms == pytest.approx(expected.latency_ms, abs=1e-9)
        assert actual.hop_count == len(actual.path) - 1
        assert actual.path[0] == expected.path[0]
        assert actual.path[-1] == destination
        walked = 0.0
        for a, b in zip(actual.path, actual.path[1:]):
            assert graph.has_edge(a, b), (a, b)
            walked += graph.edges[a, b]["delay_ms"]
        assert walked == pytest.approx(expected.latency_ms, abs=1e-9)


class TestRegistry:
    def test_backends_registered_by_name(self):
        assert isinstance(BACKENDS["networkx"], NetworkXBackend)
        assert isinstance(BACKENDS["csgraph"], CSGraphBackend)
        assert not BACKENDS["networkx"].uses_arrays
        assert BACKENDS["csgraph"].uses_arrays

    def test_get_backend_accepts_names_and_instances(self):
        backend = get_backend("csgraph")
        assert isinstance(backend, RoutingBackend)
        assert get_backend(backend) is backend

    def test_get_backend_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown routing backend"):
            get_backend("quantum")


class TestBackendEquivalenceOnRandomSnapshots:
    """Property-style check: the csgraph backend reproduces the networkx
    backend's routing tables across randomised constellations, epochs and
    station sets -- including isolated stations (unreachable pairs)."""

    @pytest.mark.parametrize("seed", range(5))
    def test_tables_match_across_random_snapshots(self, seed):
        rng = np.random.default_rng(seed)
        epoch = Epoch.from_calendar(2025, 3, 20, 12, 0, 0.0).add_seconds(
            float(rng.uniform(0.0, 86400.0))
        )
        planes = int(rng.integers(4, 9))
        satellites = planes * int(rng.integers(8, 16))
        topology = _walker(
            epoch,
            satellites,
            planes,
            altitude_km=float(rng.uniform(500.0, 1200.0)),
            inclination_deg=float(rng.uniform(40.0, 90.0)),
        )
        stations = [
            GroundStation("A", float(rng.uniform(-60, 60)), float(rng.uniform(-180, 180))),
            GroundStation("B", float(rng.uniform(-60, 60)), float(rng.uniform(-180, 180))),
            # A near-vertical elevation mask keeps this station isolated in
            # most snapshots: the unreachable-pair half of the property.
            GroundStation(
                "isolated",
                float(rng.uniform(-60, 60)),
                float(rng.uniform(-180, 180)),
                min_elevation_deg=89.9,
            ),
        ]
        epochs = epoch_range(epoch, 1800.0, 900.0)
        sequence = topology.snapshot_sequence(epochs, stations)
        sources = ["gs:A", "gs:B", "gs:isolated", 0, satellites // 2]
        saw_unreachable_station = False
        for step, graph in enumerate(sequence.graphs(copy=True)):
            reference = SnapshotRouter(graph)
            candidate = SnapshotRouter(
                graph, backend="csgraph", arrays=sequence.edge_arrays(step)
            )
            nx_tables = reference.routes_from_many(sources)
            cs_tables = candidate.routes_from_many(sources)
            for source in sources:
                _assert_tables_equivalent(nx_tables[source], cs_tables[source], graph)
            if "gs:A" not in cs_tables["gs:isolated"]:
                saw_unreachable_station = True
                unreachable = candidate.route("gs:isolated", "gs:A")
                assert unreachable == RouteResult.unreachable()
        assert saw_unreachable_station

    def test_station_pair_routes_match(self, epoch):
        topology = _walker(epoch, 120, 8)
        stations = [
            GroundStation("London", 51.5, -0.1),
            GroundStation("Tokyo", 35.7, 139.7),
        ]
        epochs = epoch_range(epoch, 3600.0, 1200.0)
        sequence = topology.snapshot_sequence(epochs, stations)
        for step, graph in enumerate(sequence.graphs(copy=True)):
            reference = SnapshotRouter(graph).route_between_stations(*stations)
            candidate = SnapshotRouter(
                graph, backend="csgraph", arrays=sequence.edge_arrays(step)
            ).route_between_stations(*stations)
            assert candidate.reachable == reference.reachable
            if reference.reachable:
                assert candidate.latency_ms == pytest.approx(
                    reference.latency_ms, abs=1e-9
                )
                assert candidate.path[0] == reference.path[0]
                assert candidate.path[-1] == reference.path[-1]
                assert all(
                    graph.has_edge(a, b)
                    for a, b in zip(candidate.path, candidate.path[1:])
                )


class TestBackendEquivalenceOnHandBuiltGraphs:
    """Edge cases the orbital fixtures cannot force deterministically."""

    def _line_graph(self):
        graph = nx.Graph()
        graph.add_nodes_from(["gs:src", 0, 1, 2, "gs:dst", "gs:island"])
        graph.add_edge("gs:src", 0, delay_ms=1.0, capacity_gbps=10.0)
        graph.add_edge(0, 1, delay_ms=2.0, capacity_gbps=10.0)
        graph.add_edge(1, 2, delay_ms=3.0, capacity_gbps=10.0)
        graph.add_edge(2, "gs:dst", delay_ms=4.0, capacity_gbps=10.0)
        return graph

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_line_graph_routing(self, backend):
        router = SnapshotRouter(self._line_graph(), backend=backend)
        result = router.route("gs:src", "gs:dst")
        assert result.reachable
        assert result.path == ("gs:src", 0, 1, 2, "gs:dst")
        assert result.latency_ms == pytest.approx(10.0)
        assert result.hop_count == 4

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_disconnected_and_unknown_nodes(self, backend):
        router = SnapshotRouter(self._line_graph(), backend=backend)
        assert router.route("gs:src", "gs:island") == RouteResult.unreachable()
        assert router.route("gs:nowhere", "gs:dst") == RouteResult.unreachable()
        assert router.routes_from("gs:nowhere") == {}
        table = router.routes_from("gs:island")
        assert set(table) == {"gs:island"}
        assert table["gs:island"].latency_ms == 0.0
        assert table["gs:island"].path == ("gs:island",)

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_zero_weight_and_zero_capacity_edges_are_still_links(self, backend):
        """Degenerate links (zero delay, zero capacity) must stay routable:
        capacity never affects path selection, and an explicit zero weight is
        an edge, not a hole in the sparse matrix."""
        graph = nx.Graph()
        graph.add_edge("gs:src", 0, delay_ms=0.0, capacity_gbps=0.0)
        graph.add_edge(0, "gs:dst", delay_ms=5.0, capacity_gbps=10.0)
        router = SnapshotRouter(graph, backend=backend)
        result = router.route("gs:src", "gs:dst")
        assert result.reachable
        assert result.path == ("gs:src", 0, "gs:dst")
        assert result.latency_ms == pytest.approx(5.0)

    def test_lazy_table_matches_dict_semantics(self):
        graph = self._line_graph()
        nx_table = SnapshotRouter(graph).routes_from("gs:src")
        cs_table = SnapshotRouter(graph, backend="csgraph").routes_from("gs:src")
        assert len(cs_table) == len(nx_table)
        assert set(cs_table) == set(nx_table)
        assert cs_table.get("gs:island") is None
        with pytest.raises(KeyError):
            cs_table["gs:island"]
        _assert_tables_equivalent(nx_table, cs_table, graph)


class TestEdgeArrays:
    def test_csr_export_matches_graph(self, epoch):
        topology = _walker(epoch, 60, 5)
        stations = [GroundStation("London", 51.5, -0.1)]
        sequence = topology.snapshot_sequence([epoch], stations)
        graph = next(sequence.graphs(copy=False))
        arrays = sequence.edge_arrays(0)
        assert isinstance(arrays, EdgeArrays)
        indptr, indices, weights, node_index = arrays  # tuple protocol
        assert isinstance(node_index, NodeIndex)
        assert len(indptr) == arrays.node_count + 1
        assert indptr[0] == 0 and indptr[-1] == len(indices) == len(weights)
        assert set(node_index.labels) == set(graph.nodes)
        adjacency = {
            (node_index.label_of(row), node_index.label_of(int(indices[pos]))): float(
                weights[pos]
            )
            for row in range(arrays.node_count)
            for pos in range(int(indptr[row]), int(indptr[row + 1]))
        }
        # Symmetric: both directions of every graph edge, nothing else.
        assert len(adjacency) == 2 * graph.number_of_edges()
        for a, b, data in graph.edges(data=True):
            assert adjacency[(a, b)] == pytest.approx(data["delay_ms"])
            assert adjacency[(b, a)] == pytest.approx(data["delay_ms"])

    def test_edge_list_is_picklable_and_round_trips(self, epoch):
        import pickle

        topology = _walker(epoch, 60, 5)
        stations = [GroundStation("London", 51.5, -0.1)]
        sequence = topology.snapshot_sequence([epoch], stations)
        edge_list = sequence.edge_list(0)
        clone = pickle.loads(pickle.dumps(edge_list))
        assert clone.labels == edge_list.labels
        assert np.array_equal(clone.a, edge_list.a)
        assert np.array_equal(clone.delay_ms, edge_list.delay_ms)
        graph = next(sequence.graphs(copy=False))
        rebuilt = clone.graph()
        assert set(rebuilt.nodes) == set(graph.nodes)
        assert set(map(frozenset, rebuilt.edges)) == set(map(frozenset, graph.edges))
        for a, b, data in graph.edges(data=True):
            assert rebuilt.edges[a, b] == data

    def test_graph_round_trip_through_arrays(self):
        graph = nx.Graph()
        graph.add_nodes_from(["gs:x", 0, 1, 9])
        graph.add_edge("gs:x", 0, delay_ms=1.5)
        graph.add_edge(0, 1, delay_ms=2.5)
        arrays = edge_arrays_from_graph(graph)
        rebuilt = graph_from_edge_arrays(arrays)
        assert set(rebuilt.nodes) == set(graph.nodes)
        assert set(map(frozenset, rebuilt.edges)) == set(map(frozenset, graph.edges))
        assert rebuilt.edges["gs:x", 0]["delay_ms"] == 1.5

    def test_router_requires_some_snapshot_view(self):
        with pytest.raises(ValueError, match="graph or edge arrays"):
            SnapshotRouter()


class TestTimeAwareRouterBackends:
    def test_route_over_time_matches_across_backends(self, epoch):
        topology = _walker(epoch, 80, 5)
        stations = [
            GroundStation("London", 51.5, -0.1),
            GroundStation("New York", 40.7, -74.0),
        ]
        results = {}
        for backend in sorted(BACKENDS):
            router = TimeAwareRouter(
                topology=topology,
                ground_stations=stations,
                step_s=600.0,
                backend=backend,
            )
            results[backend] = router.route_over_time(
                stations[0], stations[1], epoch, duration_s=3000.0
            )
        for (epoch_a, nx_result), (epoch_b, cs_result) in zip(
            results["networkx"], results["csgraph"]
        ):
            assert epoch_a == epoch_b
            assert cs_result.reachable == nx_result.reachable
            if nx_result.reachable:
                assert cs_result.latency_ms == pytest.approx(
                    nx_result.latency_ms, abs=1e-9
                )
                assert cs_result.path[0] == nx_result.path[0]
                assert cs_result.path[-1] == nx_result.path[-1]
