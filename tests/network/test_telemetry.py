"""Tests of the station-pair telemetry stores, models and registry.

The sketch contract is probabilistic in general but deterministic here:
every stream is generated from a fixed seed, so the count-min assertions
(never under-count, ``eps * total`` over-count bound, heavy-hitter
recovery) are exact regression checks, not flaky statistics.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.network.telemetry import (
    TELEMETRY,
    AutoTelemetry,
    CountMinPairStore,
    ExactPairStore,
    ExactTelemetry,
    PairStore,
    PairTelemetry,
    SketchTelemetry,
    get_telemetry,
    merge_stores,
)


def skewed_stream(seed: int, size: int, distinct: int):
    """A deterministic zipf-ish (keys, values) stream with heavy hitters."""
    rng = np.random.default_rng(seed)
    keys = rng.zipf(1.3, size=size).astype(np.int64) % distinct
    values = rng.uniform(0.1, 2.0, size=size)
    return keys, values


class TestExactPairStore:
    def test_observe_consolidates_duplicates(self):
        store = ExactPairStore()
        store.observe([3, 1, 3, 2], [1.0, 2.0, 0.5, 4.0])
        store.observe([2, 5], [1.0, 0.25])
        assert store.distinct == 4
        assert store.estimate(3) == 1.5
        assert store.estimate(2) == 5.0
        assert store.estimate(99) == 0.0
        assert store.total() == pytest.approx(8.75)

    def test_top_orders_by_value_then_key_and_drops_zeros(self):
        store = ExactPairStore()
        store.observe([10, 7, 4, 2], [3.0, 5.0, 5.0, 0.0])
        assert store.top(10) == ((4, 5.0), (7, 5.0), (10, 3.0))
        assert store.top(1) == ((4, 5.0),)
        assert store.top(0) == ()

    def test_rejects_bad_observations(self):
        store = ExactPairStore()
        with pytest.raises(ValueError):
            store.observe([1, 2], [1.0])
        with pytest.raises(ValueError):
            store.observe([1], [-0.5])
        store.observe([], [])  # empty batch is a no-op
        assert store.distinct == 0


class TestCountMinPairStore:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            CountMinPairStore(width=1000)  # not a power of two
        with pytest.raises(ValueError):
            CountMinPairStore(depth=0)
        with pytest.raises(ValueError):
            CountMinPairStore(top_capacity=0)

    def test_never_undercounts_and_meets_eps_bound(self):
        keys, values = skewed_stream(seed=42, size=50_000, distinct=20_000)
        exact = ExactPairStore()
        sketch = CountMinPairStore(width=4096, depth=4, seed=0)
        for start in range(0, keys.size, 5000):
            batch = slice(start, start + 5000)
            exact.observe(keys[batch], values[batch])
            sketch.observe(keys[batch], values[batch])

        true = exact.values
        estimates = sketch.estimate_many(exact.keys)
        total = exact.total()
        assert sketch.total() == pytest.approx(total)
        # Classic count-min guarantees, deterministic under the fixed seed:
        # estimates never drop below the truth (up to float accumulation
        # noise) and overshoot by at most eps * total, eps = e / width.
        assert (estimates >= true - 1e-9 * total).all()
        assert (estimates <= true + (np.e / sketch.width) * total).all()

    def test_heavy_hitters_survive_candidate_pressure(self):
        # Far more distinct keys than candidate slots: the bounded set must
        # still surface the true heavy hitters, with their full totals.
        keys, values = skewed_stream(seed=7, size=40_000, distinct=10_000)
        exact = ExactPairStore()
        sketch = CountMinPairStore(width=4096, depth=4, seed=0, top_capacity=16)
        for start in range(0, keys.size, 2000):
            batch = slice(start, start + 2000)
            exact.observe(keys[batch], values[batch])
            sketch.observe(keys[batch], values[batch])
        top_true = [key for key, _ in exact.top(5)]
        top_sketch = dict(sketch.top(5))
        assert list(top_sketch) == top_true
        for key in top_true:
            assert top_sketch[key] >= exact.estimate(key) - 1e-9

    def test_memory_constant_in_stream_length(self):
        sketch = CountMinPairStore(width=1024, depth=4, top_capacity=32)
        empty_bytes = sketch.memory_bytes()
        rng = np.random.default_rng(3)
        for _ in range(20):
            keys = rng.integers(0, 2**40, size=5000).astype(np.int64)
            sketch.observe(keys, np.ones(keys.size))
        # Only the bounded candidate array grows, never the table.
        assert sketch.memory_bytes() <= empty_bytes + 32 * 8

    def test_merge_equals_single_stream(self):
        keys, values = skewed_stream(seed=11, size=20_000, distinct=5_000)
        whole = CountMinPairStore(width=2048, depth=4, seed=0)
        whole.observe(keys, values)
        left = CountMinPairStore(width=2048, depth=4, seed=0)
        right = CountMinPairStore(width=2048, depth=4, seed=0)
        left.observe(keys[:12_000], values[:12_000])
        right.observe(keys[12_000:], values[12_000:])
        left.merge(right)
        assert left.total() == pytest.approx(whole.total())
        probe = np.unique(keys)
        np.testing.assert_allclose(
            left.estimate_many(probe), whole.estimate_many(probe), rtol=1e-12
        )

    def test_merge_rejects_mismatched_geometry(self):
        base = CountMinPairStore(width=1024, depth=4, seed=0)
        with pytest.raises(ValueError):
            base.merge(CountMinPairStore(width=2048, depth=4, seed=0))
        with pytest.raises(ValueError):
            base.merge(CountMinPairStore(width=1024, depth=4, seed=1))

    def test_pickle_round_trip_preserves_estimates(self):
        keys, values = skewed_stream(seed=5, size=5_000, distinct=500)
        sketch = CountMinPairStore(width=1024, depth=4, seed=0)
        sketch.observe(keys, values)
        clone = pickle.loads(pickle.dumps(sketch))
        probe = np.unique(keys)
        np.testing.assert_array_equal(
            clone.estimate_many(probe), sketch.estimate_many(probe)
        )
        assert clone.top(5) == sketch.top(5)


class TestMergeStores:
    def _streams(self):
        keys, values = skewed_stream(seed=23, size=8_000, distinct=1_000)
        return (keys[:4_000], values[:4_000]), (keys[4_000:], values[4_000:])

    def test_exact_pair_merges_in_place(self):
        (k1, v1), (k2, v2) = self._streams()
        left, right = ExactPairStore(), ExactPairStore()
        left.observe(k1, v1)
        right.observe(k2, v2)
        merged = merge_stores(left, right)
        assert merged is left
        whole = ExactPairStore()
        whole.observe(np.concatenate([k1, k2]), np.concatenate([v1, v2]))
        np.testing.assert_allclose(merged.estimate_many(whole.keys), whole.values)

    @pytest.mark.parametrize("exact_side", ["left", "right"])
    def test_mixed_merge_promotes_to_the_sketch(self, exact_side):
        (k1, v1), (k2, v2) = self._streams()
        exact = ExactPairStore()
        exact.observe(k1, v1)
        sketch = CountMinPairStore(width=2048, depth=4, seed=0)
        sketch.observe(k2, v2)
        if exact_side == "left":
            merged = merge_stores(exact, sketch)
        else:
            merged = merge_stores(sketch, exact)
        assert isinstance(merged, CountMinPairStore)
        assert merged.total() == pytest.approx(float(v1.sum() + v2.sum()))
        # The promoted result still never under-counts either stream.
        whole = ExactPairStore()
        whole.observe(np.concatenate([k1, k2]), np.concatenate([v1, v2]))
        estimates = merged.estimate_many(whole.keys)
        assert (estimates >= whole.values - 1e-9).all()

    def test_unknown_store_type_rejected(self):
        class Odd(PairStore):
            def observe(self, keys, values):  # pragma: no cover - stub
                pass

            def estimate_many(self, keys):  # pragma: no cover - stub
                return np.zeros(0)

            def top(self, count):  # pragma: no cover - stub
                return ()

            def total(self):  # pragma: no cover - stub
                return 0.0

            def memory_bytes(self):  # pragma: no cover - stub
                return 0

        with pytest.raises(TypeError):
            merge_stores(Odd(), ExactPairStore())


class TestPairTelemetry:
    LABELS = ("London", "New York", "Tokyo")

    def test_encode_decode_round_trip(self):
        telemetry = PairTelemetry(labels=self.LABELS, store=ExactPairStore())
        telemetry.observe_pairs([0, 0, 2], [1, 2, 0], [5.0, 3.0, 2.0])
        telemetry.observe_pairs([0], [1], [1.0])
        assert telemetry.estimate_pair("London", "New York") == 6.0
        assert telemetry.estimate_pair("Tokyo", "London") == 2.0
        assert telemetry.estimate_pair("New York", "Tokyo") == 0.0
        assert telemetry.top_pairs(2) == (
            ("London", "New York", 6.0),
            ("London", "Tokyo", 3.0),
        )
        assert telemetry.total_gbps() == pytest.approx(11.0)

    def test_merge_requires_matching_labels(self):
        a = PairTelemetry(labels=self.LABELS, store=ExactPairStore())
        b = PairTelemetry(labels=("London", "Tokyo"), store=ExactPairStore())
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_accumulates(self):
        a = PairTelemetry(labels=self.LABELS, store=ExactPairStore())
        b = PairTelemetry(labels=self.LABELS, store=ExactPairStore())
        a.observe_pairs([0], [1], [2.0])
        b.observe_pairs([0, 1], [1, 2], [3.0, 7.0])
        a.merge(b)
        assert a.estimate_pair("London", "New York") == 5.0
        assert a.estimate_pair("New York", "Tokyo") == 7.0


class TestTelemetryRegistry:
    def test_registry_names_match_models(self):
        assert set(TELEMETRY) == {"exact", "sketch", "auto"}
        for name, model in TELEMETRY.items():
            assert model.name == name
            assert get_telemetry(name) is model

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown telemetry model"):
            get_telemetry("census")

    def test_model_store_types(self):
        assert isinstance(ExactTelemetry().store(10**6), ExactPairStore)
        assert isinstance(SketchTelemetry().store(10), CountMinPairStore)
        auto = AutoTelemetry()
        assert isinstance(auto.store(auto.threshold), ExactPairStore)
        assert isinstance(auto.store(auto.threshold + 1), CountMinPairStore)

    def test_auto_below_threshold_is_bit_identical_to_exact(self):
        keys, values = skewed_stream(seed=2, size=2_000, distinct=300)
        auto = AutoTelemetry().store(keys.size)
        exact = ExactTelemetry().store(keys.size)
        auto.observe(keys, values)
        exact.observe(keys, values)
        assert auto.top(10) == exact.top(10)
        assert auto.total() == exact.total()
