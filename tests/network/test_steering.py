"""Tests of the congestion-steering subsystem (policies, controller, wiring).

Three layers:

* unit tests of the control loop (EWMA, hysteresis, cooldown, pruning) and
  the latency re-read helpers on hand-built edge lists;
* exactness tests that ``steering="static"`` is bit-identical to running
  with no steering across every backend x executor x flow-engine combo,
  and that adaptive policies are deterministic and executor-independent;
* an integration test showing a (sticky) congestion-aware policy
  measurably reduces stranded demand under a correlated fault sweep.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coverage.walker import WalkerDelta
from repro.demand.traffic_matrix import City, GravityTrafficModel
from repro.network.backends import SnapshotEdgeList, get_backend
from repro.network.ground_station import GroundStation
from repro.network.routing import SnapshotRouter
from repro.network.simulation import NetworkSimulator, Scenario
from repro.network.steering import (
    STEERING_POLICIES,
    CongestionAwareSteering,
    LoadSpreadingSteering,
    StaticSteering,
    SteeringPolicy,
    UtilisationWeightedSteering,
    get_steering_policy,
    link_codes,
    path_delays,
    path_delays_from_rows,
)
from repro.network.telemetry import LinkTelemetry, get_telemetry
from repro.network.topology import ConstellationTopology

CITIES = (
    City("London", 51.5, -0.1, 9.6),
    City("New York", 40.7, -74.0, 20.0),
    City("Tokyo", 35.7, 139.7, 37.0),
    City("Sao Paulo", -23.6, -46.6, 22.0),
)


@pytest.fixture(scope="module")
def topology(epoch) -> ConstellationTopology:
    wd = WalkerDelta(
        altitude_km=560.0, inclination_deg=65.0, total_satellites=240, planes=12, phasing=1
    )
    elements = wd.satellite_elements()
    per_plane = wd.satellites_per_plane
    planes = [elements[i * per_plane : (i + 1) * per_plane] for i in range(wd.planes)]
    return ConstellationTopology(planes=planes, epoch=epoch)


@pytest.fixture(scope="module")
def simulator(topology) -> NetworkSimulator:
    stations = [GroundStation(c.name, c.latitude_deg, c.longitude_deg) for c in CITIES]
    return NetworkSimulator(
        topology=topology,
        ground_stations=stations,
        traffic_model=GravityTrafficModel(cities=CITIES, total_demand=40.0),
        flows_per_step=12,
    )


def _triangle() -> SnapshotEdgeList:
    """Three nodes, three links: X-Y (1 ms), Y-Z (2 ms), X-Z (10 ms)."""
    return SnapshotEdgeList(
        labels=("X", "Y", "Z"),
        a=np.array([0, 1, 0]),
        b=np.array([1, 2, 2]),
        distance_km=np.array([300.0, 600.0, 3000.0]),
        delay_ms=np.array([1.0, 2.0, 10.0]),
        capacity_gbps=np.array([10.0, 10.0, 10.0]),
    )


class TestPolicyRegistry:
    def test_registry_names_match_entries(self):
        assert set(STEERING_POLICIES) >= {
            "static",
            "utilisation-weighted",
            "congestion-aware",
            "load-spreading",
        }
        for name, policy in STEERING_POLICIES.items():
            assert policy.name == name
            assert isinstance(policy, SteeringPolicy)

    def test_accessor_resolves_names_and_instances(self):
        policy = get_steering_policy("congestion-aware")
        assert policy is STEERING_POLICIES["congestion-aware"]
        assert get_steering_policy(policy) is policy
        with pytest.raises(ValueError, match="unknown steering policy"):
            get_steering_policy("nope")

    def test_only_static_is_non_adaptive(self):
        assert STEERING_POLICIES["static"].adaptive is False
        for name in ("utilisation-weighted", "congestion-aware", "load-spreading"):
            assert STEERING_POLICIES[name].adaptive is True

    def test_policy_parameter_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            CongestionAwareSteering(alpha=0.0)
        with pytest.raises(ValueError, match="alpha"):
            CongestionAwareSteering(alpha=1.5)
        with pytest.raises(ValueError, match="bands"):
            CongestionAwareSteering(enter_band=0.3, exit_band=0.5)
        with pytest.raises(ValueError, match="cooldown"):
            CongestionAwareSteering(cooldown_steps=-1)
        with pytest.raises(ValueError, match="penalty"):
            CongestionAwareSteering(penalty=1.0)
        with pytest.raises(ValueError, match="gain"):
            UtilisationWeightedSteering(gain=0.0)
        with pytest.raises(ValueError, match="jitter"):
            LoadSpreadingSteering(jitter=0.0)

    def test_scenario_and_sweep_validate_steering_names(self, simulator, epoch):
        with pytest.raises(ValueError, match="unknown steering policy"):
            Scenario(name="x", steering="nope")
        with pytest.raises(ValueError, match="unknown steering policy"):
            simulator.run_scenarios([Scenario(name="a")], epoch, 1.0, steering="nope")


class TestLinkCodes:
    def test_codes_are_endpoint_order_invariant(self):
        edges = _triangle()
        flipped = SnapshotEdgeList(
            labels=edges.labels,
            a=edges.b,
            b=edges.a,
            distance_km=edges.distance_km,
            delay_ms=edges.delay_ms,
            capacity_gbps=edges.capacity_gbps,
        )
        assert np.array_equal(link_codes(edges), link_codes(flipped))

    def test_codes_are_unique_per_link(self):
        codes = link_codes(_triangle())
        assert codes.dtype == np.int64
        assert len(np.unique(codes)) == codes.size


class TestController:
    def test_static_controller_is_identity(self):
        edges = _triangle()
        controller = StaticSteering().controller()
        assert controller.steer(edges) is edges
        controller.observe(edges, np.array([1.0, 1.0, 1.0]))
        assert controller.step_stats() == (0, 0.0, 0)
        assert controller.engaged_count == 0

    def test_engagement_requires_crossing_enter_band(self):
        edges = _triangle()
        policy = CongestionAwareSteering(alpha=0.5, enter_band=0.55, exit_band=0.35)
        controller = policy.controller()
        assert controller.steer(edges) is edges  # no state yet
        controller.observe(edges, np.array([1.0, 0.0, 0.0]))
        # EWMA after one step is 0.5 < 0.55: not engaged yet.
        assert controller.engaged_count == 0
        assert controller.steer(edges) is edges
        controller.observe(edges, np.array([1.0, 0.0, 0.0]))
        # 0.75 >= 0.55: the X-Y link engages; its flip counts as a reroute.
        assert controller.engaged_count == 1
        reroutes, max_smoothed, flaps = controller.step_stats()
        assert reroutes == 1 and flaps == 0
        assert max_smoothed == pytest.approx(0.75)

    def test_steer_scales_only_engaged_links(self):
        edges = _triangle()
        policy = CongestionAwareSteering(alpha=1.0, enter_band=0.5, exit_band=0.1, penalty=8.0)
        controller = policy.controller()
        controller.steer(edges)
        controller.observe(edges, np.array([1.0, 0.0, 0.0]))
        steered = controller.steer(edges)
        assert steered is not edges
        assert np.array_equal(steered.delay_ms, np.array([8.0, 2.0, 10.0]))
        # Everything else is shared, and the input is untouched.
        assert steered.capacity_gbps is edges.capacity_gbps
        assert np.array_equal(edges.delay_ms, np.array([1.0, 2.0, 10.0]))

    def test_hysteresis_holds_between_bands(self):
        edges = _triangle()
        policy = CongestionAwareSteering(
            alpha=1.0, enter_band=0.6, exit_band=0.2, cooldown_steps=0
        )
        controller = policy.controller()
        controller.steer(edges)
        controller.observe(edges, np.array([0.9, 0.0, 0.0]))
        assert controller.engaged_count == 1
        controller.steer(edges)
        controller.observe(edges, np.array([0.4, 0.0, 0.0]))  # between bands
        assert controller.engaged_count == 1  # still engaged
        controller.steer(edges)
        controller.observe(edges, np.array([0.1, 0.0, 0.0]))  # below exit
        assert controller.engaged_count == 0

    def test_cooldown_suppresses_flips_as_flaps(self):
        edges = _triangle()
        policy = CongestionAwareSteering(
            alpha=1.0, enter_band=0.6, exit_band=0.2, cooldown_steps=2
        )
        controller = policy.controller()
        controller.steer(edges)
        controller.observe(edges, np.array([0.9, 0.0, 0.0]))  # engage, arm cooldown
        assert controller.step_stats()[0] == 1
        controller.steer(edges)
        controller.observe(edges, np.array([0.0, 0.0, 0.0]))  # wants out, held
        reroutes, _, flaps = controller.step_stats()
        assert (reroutes, flaps) == (0, 1)
        assert controller.engaged_count == 1
        controller.steer(edges)
        controller.observe(edges, np.array([0.0, 0.0, 0.0]))  # still held
        assert controller.step_stats()[2] == 1
        controller.steer(edges)
        controller.observe(edges, np.array([0.0, 0.0, 0.0]))  # cooldown expired
        reroutes, _, flaps = controller.step_stats()
        assert (reroutes, flaps) == (1, 0)
        assert controller.engaged_count == 0

    def test_state_pruning_drops_decayed_links(self):
        edges = _triangle()
        policy = UtilisationWeightedSteering(alpha=1.0, enter_band=0.9, exit_band=0.1)
        controller = policy.controller()
        controller.steer(edges)
        controller.observe(edges, np.array([0.5, 0.5, 0.5]))
        assert controller._codes.size == 3
        controller.steer(edges)
        controller.observe(edges, np.array([0.0, 0.0, 0.0]))
        # alpha=1.0 folds the zeros straight in; nothing engaged, nothing
        # cooling: the state table empties.
        assert controller._codes.size == 0

    def test_policy_multiplier_semantics(self):
        smoothed = np.array([0.5, 1.0])
        codes = np.array([3, 7], dtype=np.int64)
        weighted = UtilisationWeightedSteering(gain=4.0)
        assert np.allclose(
            weighted.multipliers(smoothed, codes, 1), np.array([3.0, 5.0])
        )
        aware = CongestionAwareSteering(penalty=8.0)
        assert np.array_equal(
            aware.multipliers(smoothed, codes, 1), np.array([8.0, 8.0])
        )
        spreading = LoadSpreadingSteering(jitter=0.75, seed=0)
        first = spreading.multipliers(smoothed, codes, 1)
        assert ((first >= 1.0) & (first < 1.75)).all()
        # Deterministic per (code, seed, step); rotates with the step.
        assert np.array_equal(first, spreading.multipliers(smoothed, codes, 1))
        assert not np.array_equal(first, spreading.multipliers(smoothed, codes, 2))


class TestPathDelays:
    def test_label_paths_sum_real_delays(self):
        edges = _triangle()
        delays = path_delays(edges, [("X", "Y", "Z"), ("X", "Z"), ()])
        assert delays[0] == pytest.approx(3.0)
        assert delays[1] == pytest.approx(10.0)
        assert np.isinf(delays[2])

    def test_single_node_path_has_zero_delay(self):
        delays = path_delays(_triangle(), [("X",)])
        assert delays[0] == pytest.approx(0.0)

    def test_unknown_label_raises(self):
        with pytest.raises(ValueError, match="not present"):
            path_delays(_triangle(), [("X", "Q")])

    def test_missing_link_raises(self):
        edges = _triangle()
        square = SnapshotEdgeList(
            labels=("X", "Y", "Z"),
            a=np.array([0]),
            b=np.array([1]),
            distance_km=np.array([300.0]),
            delay_ms=np.array([1.0]),
            capacity_gbps=np.array([10.0]),
        )
        with pytest.raises(ValueError, match="link not present"):
            path_delays(square, [("X", "Z")])
        del edges

    def test_row_paths_match_label_paths(self):
        edges = _triangle()
        offsets = np.array([0, 3, 5, 5])
        rows = np.array([0, 1, 2, 0, 2])
        by_rows = path_delays_from_rows(edges, offsets, rows)
        by_labels = path_delays(edges, [("X", "Y", "Z"), ("X", "Z"), ()])
        assert np.array_equal(by_rows[:2], by_labels[:2])
        assert np.isinf(by_rows[2]) and np.isinf(by_labels[2])

    def test_delays_read_unsteered_column(self):
        """Steered routing weights never leak into reported latencies."""
        edges = _triangle()
        policy = CongestionAwareSteering(alpha=1.0, enter_band=0.5, exit_band=0.1)
        controller = policy.controller()
        controller.steer(edges)
        controller.observe(edges, np.array([1.0, 0.0, 0.0]))
        steered = controller.steer(edges)
        assert steered.delay_ms[0] == pytest.approx(8.0)
        assert path_delays(edges, [("X", "Y")])[0] == pytest.approx(1.0)


FAULTS = (
    ("plane_outage", {"count": 1, "seed": 7}),
    ("link_degradation", {"factor": 0.0, "fraction": 0.1, "seed": 3}),
)


def _steps(result):
    return [
        {
            field: getattr(step, field)
            for field in (
                "offered_gbps",
                "delivered_gbps",
                "stranded_gbps",
                "mean_latency_ms",
                "worst_link_utilisation",
                "steering_reroutes",
                "steering_max_utilisation",
                "steering_flaps",
            )
        }
        for step in result.steps
    ]


class TestStaticBitIdentity:
    @pytest.mark.parametrize("backend", ["networkx", "csgraph"])
    @pytest.mark.parametrize("flow_engine", ["objects", "columnar"])
    def test_static_matches_no_steering(self, simulator, epoch, backend, flow_engine):
        scenarios = [Scenario(name="s", allocator="proportional_array", faults=FAULTS)]
        base = simulator.run_scenarios(
            scenarios, epoch, 3.0, backend=backend, flow_engine=flow_engine
        )["s"]
        static = simulator.run_scenarios(
            scenarios, epoch, 3.0, backend=backend, flow_engine=flow_engine,
            steering="static",
        )["s"]
        assert base.steps == static.steps

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_static_matches_no_steering_across_executors(
        self, simulator, epoch, executor
    ):
        scenarios = [Scenario(name="s", faults=FAULTS, steering="static")]
        serial = simulator.run_scenarios(scenarios, epoch, 2.0, backend="csgraph")
        pooled = simulator.run_scenarios(
            scenarios, epoch, 2.0, backend="csgraph", executor=executor, max_workers=2
        )
        assert serial["s"].steps == pooled["s"].steps

    def test_scenario_override_beats_sweep_default(self, simulator, epoch):
        """A per-scenario ``static`` opts out of the sweep's adaptive default."""
        sweep = simulator.run_scenarios(
            [
                Scenario(name="open", steering="static", faults=FAULTS),
                Scenario(name="closed", faults=FAULTS),
            ],
            epoch,
            3.0,
            backend="csgraph",
            steering="congestion-aware",
        )
        base = simulator.run_scenarios(
            [Scenario(name="open", faults=FAULTS)], epoch, 3.0, backend="csgraph"
        )
        assert sweep["open"].steps == base["open"].steps
        assert any(step.steering_max_utilisation > 0.0 for step in sweep["closed"].steps)


class TestAdaptiveDeterminism:
    @pytest.mark.parametrize("policy", ["utilisation-weighted", "congestion-aware", "load-spreading"])
    def test_repeat_runs_are_bit_identical(self, simulator, epoch, policy):
        scenarios = [Scenario(name="a", faults=FAULTS, steering=policy)]
        first = simulator.run_scenarios(scenarios, epoch, 3.0, backend="csgraph")
        second = simulator.run_scenarios(scenarios, epoch, 3.0, backend="csgraph")
        assert _steps(first["a"]) == _steps(second["a"])

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_executors_are_bit_identical(self, simulator, epoch, executor):
        scenarios = [
            Scenario(name="a", faults=FAULTS, steering="congestion-aware"),
            Scenario(name="b", faults=FAULTS),
        ]
        serial = simulator.run_scenarios(scenarios, epoch, 3.0, backend="csgraph")
        pooled = simulator.run_scenarios(
            scenarios, epoch, 3.0, backend="csgraph", executor=executor, max_workers=2
        )
        for name in ("a", "b"):
            assert _steps(serial[name]) == _steps(pooled[name])

    def test_flow_engines_agree_under_steering(self, simulator, epoch):
        scenarios = [
            Scenario(
                name="a",
                allocator="proportional_array",
                faults=FAULTS,
                steering="congestion-aware",
            )
        ]
        objects = simulator.run_scenarios(
            scenarios, epoch, 3.0, backend="csgraph", flow_engine="objects"
        )
        columnar = simulator.run_scenarios(
            scenarios, epoch, 3.0, backend="csgraph", flow_engine="columnar"
        )
        assert _steps(objects["a"]) == _steps(columnar["a"])

    def test_steering_fields_default_to_zero(self, simulator, epoch):
        result = simulator.run_scenarios([Scenario(name="s")], epoch, 1.0)["s"]
        step = result.steps[0]
        assert step.steering_reroutes == 0
        assert step.steering_max_utilisation == 0.0
        assert step.steering_flaps == 0


class TestAdaptiveImprovesFaultSweep:
    def test_sticky_congestion_aware_reduces_stranded_demand(self, simulator, epoch):
        """Closed-loop steering recovers starved demand under dead links.

        ``plane_outage`` plus zero-capacity ``link_degradation`` starves the
        flows whose open-loop shortest path crosses a dead link.  A sticky
        congestion-aware variant (instant engagement, no decay-driven
        disengagement) maps the dead region out over a few steps and detours
        around it; the default hysteresis would forget a dead link two steps
        after routing away from it.
        """
        sticky = CongestionAwareSteering(
            alpha=0.9, enter_band=0.5, exit_band=0.0, cooldown_steps=0, penalty=12.0
        )
        STEERING_POLICIES["sticky-congestion"] = sticky
        try:
            scenarios = lambda name, steering: [
                Scenario(
                    name=name,
                    allocator="proportional_array",
                    faults=FAULTS,
                    steering=steering,
                )
            ]
            static = simulator.run_scenarios(
                scenarios("f", "static"), epoch, 10.0,
                backend="csgraph", flow_engine="columnar",
            )["f"]
            adaptive = simulator.run_scenarios(
                scenarios("f", "sticky-congestion"), epoch, 10.0,
                backend="csgraph", flow_engine="columnar",
            )["f"]
        finally:
            del STEERING_POLICIES["sticky-congestion"]
        assert sum(s.steering_reroutes for s in adaptive.steps) > 0
        assert adaptive.mean_stranded_gbps() < 0.90 * static.mean_stranded_gbps()
        # The recovered demand is actually delivered, not just re-labelled.
        delivered = lambda result: sum(s.delivered_gbps for s in result.steps)
        assert delivered(adaptive) > delivered(static)


class TestStrandedSemantics:
    def test_stranded_counts_starved_flows(self, simulator, epoch):
        """Routed-but-zero-allocated demand counts as stranded, both engines."""
        faults = (("link_degradation", {"factor": 0.0, "fraction": 0.3, "seed": 11}),)
        for flow_engine in ("objects", "columnar"):
            result = simulator.run_scenarios(
                [Scenario(name="s", allocator="proportional_array", faults=faults)],
                epoch,
                2.0,
                backend="csgraph",
                flow_engine=flow_engine,
            )["s"]
            assert any(step.stranded_gbps > 0.0 for step in result.steps)
            for step in result.steps:
                # Stranded demand (unroutable + starved-at-zero) and the
                # delivered traffic never over-count the offered demand.
                assert step.stranded_gbps >= 0.0
                assert (
                    step.delivered_gbps + step.stranded_gbps
                    <= step.offered_gbps + 1e-9
                )


class TestLinkTelemetry:
    def test_observe_and_top_links(self):
        edges = _triangle()
        telemetry = LinkTelemetry(edges.labels, get_telemetry("exact").store(4))
        codes = link_codes(edges)
        telemetry.observe_links(codes, np.array([0.9, 0.1, 0.0]))
        telemetry.observe_links(codes, np.array([0.8, 0.2, 0.0]))
        top = telemetry.top_links(2)
        assert top[0] == ("X", "Y", pytest.approx(1.7))
        assert top[1] == ("Y", "Z", pytest.approx(0.3))
        assert telemetry.total() == pytest.approx(2.0)

    def test_merge_requires_matching_labels(self):
        edges = _triangle()
        left = LinkTelemetry(edges.labels, get_telemetry("exact").store(4))
        right = LinkTelemetry(("A", "B"), get_telemetry("exact").store(4))
        with pytest.raises(ValueError, match="one snapshot group"):
            left.merge(right)

    def test_merge_accumulates(self):
        edges = _triangle()
        codes = link_codes(edges)
        left = LinkTelemetry(edges.labels, get_telemetry("exact").store(4))
        right = LinkTelemetry(edges.labels, get_telemetry("exact").store(4))
        left.observe_links(codes, np.array([0.5, 0.0, 0.0]))
        right.observe_links(codes, np.array([0.25, 1.0, 0.0]))
        left.merge(right)
        assert left.total() == pytest.approx(1.75)
        assert left.top_links(1)[0] == ("Y", "Z", pytest.approx(1.0))

    def test_simulation_collects_link_telemetry(self, simulator, epoch):
        result = simulator.run_scenarios(
            [Scenario(name="s", telemetry="exact")], epoch, 2.0, backend="csgraph"
        )["s"]
        assert result.link_telemetry is not None
        hot = result.sustained_hot_links(3)
        assert 0 < len(hot) <= 3
        # Sustained heat is summed per-step utilisation, descending.
        values = [value for _, _, value in hot]
        assert values == sorted(values, reverse=True)
        assert all(value > 0.0 for value in values)

    def test_no_telemetry_means_no_link_store(self, simulator, epoch):
        result = simulator.run_scenarios(
            [Scenario(name="s")], epoch, 1.0, backend="csgraph"
        )["s"]
        assert result.link_telemetry is None
        assert result.sustained_hot_links() == ()

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_link_telemetry_consistent_across_executors(
        self, simulator, epoch, executor
    ):
        scenarios = [Scenario(name="s", telemetry="exact", steering="congestion-aware")]
        serial = simulator.run_scenarios(scenarios, epoch, 2.0, backend="networkx")
        pooled = simulator.run_scenarios(
            scenarios, epoch, 2.0, backend="networkx", executor=executor, max_workers=2
        )
        assert serial["s"].link_telemetry is not None
        assert (
            serial["s"].sustained_hot_links(5) == pooled["s"].sustained_hot_links(5)
        )
        assert serial["s"].link_telemetry.total() == pytest.approx(
            pooled["s"].link_telemetry.total()
        )


class TestUtilisationExportParity:
    def test_dict_and_array_exports_agree(self, simulator, epoch):
        """Both allocation paths export the same (E,) utilisation layout."""
        from repro.network.alloc_arrays import compile_flow_link_system
        from repro.network.capacity import Flow, allocate_proportional
        from repro.network.simulation import _EdgeListCapacityView

        sequence = simulator.topology.snapshot_sequence(
            [epoch], simulator.ground_stations
        )
        edge_list = sequence.edge_list(0)
        view = _EdgeListCapacityView(edge_list)
        router = SnapshotRouter(backend="csgraph", arrays=edge_list.arrays())
        sources = [f"gs:{city.name}" for city in CITIES[:2]]
        routes = get_backend("csgraph").routes_from_many(router, sources)
        flows = []
        for source in sources:
            for destination in (f"gs:{city.name}" for city in CITIES[2:]):
                route = routes[source].get(destination)
                if route is None:
                    continue
                flows.append(
                    Flow(
                        name=f"{source}->{destination}",
                        path=route.path,
                        demand_gbps=5.0,
                        path_rows=route.path_rows,
                    )
                )
        assert flows
        allocation = allocate_proportional(view, flows)
        by_dict = allocation.link_utilisation_array(edge_list)
        system = compile_flow_link_system(view, flows)
        rates = np.array([allocation.allocated_gbps[flow.name] for flow in flows])
        utilisation = system.link_loads(rates) / system.capacity
        by_array = system.link_utilisation_array(utilisation, len(edge_list.a))
        assert np.allclose(by_dict, by_array)
        assert by_dict.shape == (len(edge_list.a),)


class TestBulkWalkBatching:
    def test_many_sources_one_walk_matches_per_source_walks(self, simulator, epoch):
        from repro.network.backends import bulk_path_rows_many

        sequence = simulator.topology.snapshot_sequence(
            [epoch], simulator.ground_stations
        )
        edge_list = sequence.edge_list(0)
        router = SnapshotRouter(backend="csgraph", arrays=edge_list.arrays())
        names = [f"gs:{city.name}" for city in CITIES]
        routes = get_backend("csgraph").routes_from_many(router, names)
        tables = [routes[name] for name in names]
        node_index = edge_list.node_index
        group_of, dest_rows = [], []
        for source_group in range(len(names)):
            for destination in names:
                group_of.append(source_group)
                dest_rows.append(node_index.index_of(destination))
        group_of = np.array(group_of, dtype=np.intp)
        dest_rows = np.array(dest_rows, dtype=np.intp)
        offsets, rows, latency = bulk_path_rows_many(tables, group_of, dest_rows)
        cursor = 0
        for source_group, source in enumerate(names):
            solo_offsets, solo_rows, solo_latency = tables[source_group].bulk_path_rows(
                dest_rows[cursor : cursor + len(names)]
            )
            begin, end = offsets[cursor], offsets[cursor + len(names)]
            assert np.array_equal(rows[begin:end], solo_rows)
            assert np.array_equal(
                latency[cursor : cursor + len(names)], solo_latency
            )
            cursor += len(names)

    def test_negative_rows_yield_empty_inf_segments(self, simulator, epoch):
        from repro.network.backends import bulk_path_rows_many

        sequence = simulator.topology.snapshot_sequence(
            [epoch], simulator.ground_stations
        )
        edge_list = sequence.edge_list(0)
        router = SnapshotRouter(backend="csgraph", arrays=edge_list.arrays())
        routes = get_backend("csgraph").routes_from_many(router, ["gs:London"])
        tables = [routes["gs:London"]]
        offsets, rows, latency = bulk_path_rows_many(
            tables,
            np.array([0, -1, 0], dtype=np.intp),
            np.array([edge_list.node_index.index_of("gs:Tokyo"), 0, -1], dtype=np.intp),
        )
        assert offsets[2] == offsets[1]  # unknown source: empty segment
        assert offsets[3] == offsets[2]  # unknown destination: empty segment
        assert np.isinf(latency[1]) and np.isinf(latency[2])
        assert np.isfinite(latency[0]) and offsets[1] > 0
