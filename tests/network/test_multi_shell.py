"""Tests of sharded multi-shell topologies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coverage.walker import WalkerDelta
from repro.demand.traffic_matrix import City, GravityTrafficModel
from repro.network.ground_station import GroundStation
from repro.network.simulation import NetworkSimulator, Scenario
from repro.network.topology import ConstellationTopology, MultiShellTopology
from repro.orbits.time import epoch_range


def _walker_shell(epoch, altitude_km: float, total: int, planes: int) -> ConstellationTopology:
    wd = WalkerDelta(
        altitude_km=altitude_km,
        inclination_deg=65.0,
        total_satellites=total,
        planes=planes,
        phasing=1,
    )
    elements = wd.satellite_elements()
    per_plane = wd.satellites_per_plane
    return ConstellationTopology(
        planes=[elements[i * per_plane : (i + 1) * per_plane] for i in range(wd.planes)],
        epoch=epoch,
    )


@pytest.fixture(scope="module")
def shells(epoch) -> list[ConstellationTopology]:
    return [
        _walker_shell(epoch, 550.0, 60, 5),
        _walker_shell(epoch, 1100.0, 40, 4),
    ]


@pytest.fixture(scope="module")
def multi(shells) -> MultiShellTopology:
    return MultiShellTopology(shells=shells)


class TestMultiShellStructure:
    def test_validation(self):
        with pytest.raises(ValueError):
            MultiShellTopology(shells=[])

    def test_counts_and_global_ids(self, multi, shells):
        assert multi.shell_count == 2
        assert multi.satellite_count == 100
        node_ids = [node.node_id for node in multi.nodes]
        assert node_ids == list(range(100))

    def test_positions_concatenate_per_shard(self, multi, shells, epoch):
        epochs = epoch_range(epoch, 1200.0, 600.0)
        positions = multi.positions_ecef_over(epochs)
        assert positions.shape == (2, 100, 3)
        first = shells[0].positions_ecef_over(epochs)
        second = shells[1].positions_ecef_over(epochs)
        assert np.array_equal(positions[:, :60, :], first)
        assert np.array_equal(positions[:, 60:, :], second)

    def test_single_shell_composition_matches_the_shell(self, shells, epoch):
        alone = MultiShellTopology(shells=[shells[0]])
        graph = alone.snapshot_graph()
        reference = shells[0].snapshot_graph()
        assert set(graph.nodes) == set(reference.nodes)
        assert set(map(frozenset, graph.edges)) == set(map(frozenset, reference.edges))
        for a, b, data in reference.edges(data=True):
            assert graph.edges[a, b] == data
        assert all(graph.nodes[n]["shell"] == 0 for n in graph.nodes)


class TestMultiShellGraphs:
    def test_snapshot_contains_both_shells_and_inter_shell_links(self, multi):
        graph = multi.snapshot_graph()
        shells_present = {graph.nodes[n]["shell"] for n in graph.nodes}
        assert shells_present == {0, 1}
        inter = [
            (a, b)
            for a, b in graph.edges
            if graph.nodes[a]["shell"] != graph.nodes[b]["shell"]
        ]
        assert inter, "expected nearest-feasible-neighbour links between shells"
        for a, b in inter:
            assert graph.edges[a, b]["distance_km"] <= multi.isl_config.max_range_km

    def test_sequence_equivalence(self, multi, epoch):
        stations = [GroundStation("London", 51.5, -0.1), GroundStation("Tokyo", 35.7, 139.7)]
        epochs = epoch_range(epoch, 3600.0, 900.0)
        sequence = multi.snapshot_sequence(epochs, stations)
        for at, graph in zip(epochs, sequence.graphs(copy=True)):
            reference = multi.snapshot_graph(at, stations)
            assert set(graph.nodes) == set(reference.nodes)
            assert set(map(frozenset, graph.edges)) == set(map(frozenset, reference.edges))

    def test_validation_of_link_policy(self, shells):
        with pytest.raises(ValueError):
            MultiShellTopology(shells=shells, inter_shell_links="mesh")
        with pytest.raises(ValueError):
            MultiShellTopology(
                shells=shells, inter_shell_links="k-nearest", inter_shell_k=0
            )

    def test_k_nearest_with_k1_matches_default_nearest(self, shells, multi):
        """Regression: the default policy is untouched, and k-nearest with
        k=1 degenerates to exactly the nearest-neighbour stitching."""
        k1 = MultiShellTopology(
            shells=shells, inter_shell_links="k-nearest", inter_shell_k=1
        )
        graph = k1.snapshot_graph()
        reference = multi.snapshot_graph()
        assert set(graph.nodes) == set(reference.nodes)
        assert set(map(frozenset, graph.edges)) == set(map(frozenset, reference.edges))
        for a, b, data in reference.edges(data=True):
            assert graph.edges[a, b] == data

    def test_k_nearest_adds_redundant_inter_shell_links(self, shells, multi):
        k2 = MultiShellTopology(
            shells=shells, inter_shell_links="k-nearest", inter_shell_k=2
        )
        graph = k2.snapshot_graph()
        reference = multi.snapshot_graph()

        def split(g):
            inter, intra = set(), set()
            for a, b in g.edges:
                target = inter if g.nodes[a]["shell"] != g.nodes[b]["shell"] else intra
                target.add(frozenset((a, b)))
            return inter, intra

        inter_k2, intra_k2 = split(graph)
        inter_k1, intra_k1 = split(reference)
        assert intra_k2 == intra_k1, "intra-shell +Grid must be unaffected"
        assert inter_k1 <= inter_k2, "k-nearest must keep every nearest link"
        assert len(inter_k2) > len(inter_k1), "k=2 must add redundant links"
        for key in inter_k2:
            a, b = tuple(key)
            assert graph.edges[a, b]["distance_km"] <= k2.isl_config.max_range_km

    def test_k_nearest_links_are_the_nearest_feasible_neighbours(self, shells):
        from repro.network.isl import isl_feasible

        k2 = MultiShellTopology(
            shells=shells, inter_shell_links="k-nearest", inter_shell_k=2
        )
        graph = k2.snapshot_graph()
        positions = k2.positions_ecef_km()
        lower_count = shells[0].satellite_count
        upper = positions[lower_count:]
        for sat in range(lower_count):
            distances = np.linalg.norm(upper - positions[sat], axis=1)
            for local in np.argsort(distances)[:2]:
                neighbour = lower_count + int(local)
                if isl_feasible(
                    positions[sat], positions[neighbour], k2.isl_config
                ):
                    assert graph.has_edge(sat, neighbour), (
                        f"satellite {sat} is missing a link to near neighbour "
                        f"{neighbour} of the upper shell"
                    )

    def test_simulates_through_the_same_engine(self, multi, epoch):
        cities = (
            City("London", 51.5, -0.1, 9.6),
            City("New York", 40.7, -74.0, 20.0),
            City("Tokyo", 35.7, 139.7, 37.0),
        )
        simulator = NetworkSimulator(
            topology=multi,
            ground_stations=[
                GroundStation(c.name, c.latitude_deg, c.longitude_deg) for c in cities
            ],
            traffic_model=GravityTrafficModel(cities=cities, total_demand=30.0),
            flows_per_step=6,
        )
        sweep = simulator.run_scenarios(
            [Scenario(name="base"), Scenario(name="heavy", demand_multiplier=2.0)],
            epoch,
            duration_hours=2.0,
        )
        assert len(sweep["base"].steps) == 2
        assert sweep["base"].mean_delivery_ratio() > 0.0
        reference = simulator.run(epoch, duration_hours=2.0)
        assert sweep["base"].steps == reference.steps
