"""Tests of the pipeline instrumentation layer (repro.obs wired into sweeps).

The two contracts under test:

* **disabled is free and invisible** -- running with ``instrument=True``
  (or a progress callback) produces bit-identical ``StepStatistics`` to an
  untraced run, across backends and flow engines;
* **metrics are executor-invariant** -- the deterministic slices of
  :class:`~repro.obs.RunMetrics` (stage call counts, counters, gauges)
  are exactly equal across serial, thread and process sweeps of the same
  fixed-seed scenario set, because worker-side metrics merge elementwise
  like telemetry.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.coverage.walker import WalkerDelta
from repro.demand.traffic_matrix import City, GravityTrafficModel
from repro.network.ground_station import GroundStation
from repro.network.simulation import NetworkSimulator, Scenario, run_grid
from repro.network.topology import ConstellationTopology
from repro.obs import STAGES, ProgressEvent, RunMetrics

CITIES = (
    City("London", 51.5, -0.1, 9.6),
    City("New York", 40.7, -74.0, 20.0),
    City("Tokyo", 35.7, 139.7, 37.0),
    City("Sao Paulo", -23.6, -46.6, 22.0),
)

SCENARIOS = [
    Scenario(name="objects", allocator="proportional"),
    Scenario(name="columnar", allocator="proportional_array", flow_engine="columnar"),
    Scenario(name="telemetry", allocator="proportional_array", telemetry="exact"),
    Scenario(
        name="steered",
        allocator="proportional_array",
        flow_engine="columnar",
        steering="congestion-aware",
    ),
]

DURATION_HOURS = 3.0


@pytest.fixture(scope="module")
def topology(epoch) -> ConstellationTopology:
    wd = WalkerDelta(
        altitude_km=560.0, inclination_deg=65.0, total_satellites=60, planes=5, phasing=1
    )
    elements = wd.satellite_elements()
    per_plane = wd.satellites_per_plane
    planes = [elements[i * per_plane : (i + 1) * per_plane] for i in range(wd.planes)]
    return ConstellationTopology(planes=planes, epoch=epoch)


@pytest.fixture(scope="module")
def simulator(topology) -> NetworkSimulator:
    return NetworkSimulator(
        topology=topology,
        ground_stations=[
            GroundStation(c.name, c.latitude_deg, c.longitude_deg) for c in CITIES
        ],
        traffic_model=GravityTrafficModel(cities=CITIES, total_demand=40.0),
        flows_per_step=10,
    )


def _sweep(simulator, epoch, **kwargs):
    return simulator.run_scenarios(
        SCENARIOS, epoch, DURATION_HOURS, 1.0, backend="csgraph", **kwargs
    )


class TestDisabledIsInvisible:
    @pytest.mark.parametrize("backend", ["networkx", "csgraph"])
    @pytest.mark.parametrize("flow_engine", ["objects", "columnar"])
    def test_instrumented_statistics_bit_identical(
        self, simulator, epoch, backend, flow_engine
    ):
        untraced = simulator.run_scenarios(
            SCENARIOS, epoch, DURATION_HOURS, 1.0, backend=backend, flow_engine=flow_engine
        )
        traced = simulator.run_scenarios(
            SCENARIOS,
            epoch,
            DURATION_HOURS,
            1.0,
            backend=backend,
            flow_engine=flow_engine,
            instrument=True,
        )
        for name in untraced:
            # Frozen-dataclass equality compares every statistics field, so
            # this is exact bit-identity, not a tolerance.
            assert untraced[name].steps == traced[name].steps

    def test_progress_callback_does_not_perturb_results(self, simulator, epoch):
        untraced = _sweep(simulator, epoch)
        observed = _sweep(simulator, epoch, progress=lambda event: None)
        for name in untraced:
            assert untraced[name].steps == observed[name].steps
            # Progress alone observes the sweep; it does not attach metrics.
            assert observed[name].metrics is None

    def test_metrics_absent_by_default_present_when_instrumented(
        self, simulator, epoch
    ):
        plain = _sweep(simulator, epoch)
        traced = _sweep(simulator, epoch, instrument=True)
        for name in plain:
            assert plain[name].metrics is None
            assert isinstance(traced[name].metrics, RunMetrics)

    def test_single_run_entry_point_forwards_instrument(self, simulator, epoch):
        result = simulator.run(
            epoch, DURATION_HOURS, 1.0, backend="csgraph", instrument=True
        )
        assert isinstance(result.metrics, RunMetrics)
        assert result.metrics.counters["steps"] == len(result.steps)


class TestMetricsContent:
    def test_stage_accounting_is_complete_and_bounded(self, simulator, epoch):
        begin = time.perf_counter()
        traced = _sweep(simulator, epoch, flow_engine="columnar", instrument=True)
        wall = time.perf_counter() - begin
        steps = len(traced["columnar"].steps)
        for name, result in traced.items():
            metrics = result.metrics
            assert metrics.stages == STAGES
            # Every step passes through the snapshot provider, selection,
            # routing, allocation and the statistics fold exactly once.
            for stage in ("snapshot", "flow_selection", "routing", "allocation", "statistics"):
                assert metrics.stage_calls[metrics.stage_index(stage)] == steps, (
                    name,
                    stage,
                )
            assert metrics.counters["steps"] == steps
            assert metrics.counters["flows_selected"] == steps * 10
            assert 0.0 < metrics.total_seconds() <= wall
            assert metrics.gauges["edge_list_bytes"] > 0.0
        # Stage spans are disjoint slices of the wall clock, so the sweep's
        # total traced time is bounded by -- and a real share of -- it.
        pooled = sum(r.metrics.total_seconds() for r in traced.values())
        assert pooled <= wall
        # Conditional stages appear exactly where their features are on.
        steering_row = lambda m: m.stage_calls[m.stage_index("steering")]
        telemetry_row = lambda m: m.stage_calls[m.stage_index("telemetry")]
        assert steering_row(traced["steered"].metrics) > 0
        assert steering_row(traced["objects"].metrics) == 0
        assert telemetry_row(traced["telemetry"].metrics) > 0
        assert telemetry_row(traced["objects"].metrics) == 0
        assert traced["steered"].metrics.gauges["steering_state_bytes"] > 0.0
        assert traced["telemetry"].metrics.gauges["telemetry_bytes"] > 0.0
        assert traced["columnar"].metrics.gauges["incidence_bytes"] > 0.0

    def test_histogram_counts_match_call_counts(self, simulator, epoch):
        traced = _sweep(simulator, epoch, instrument=True)
        for result in traced.values():
            metrics = result.metrics
            assert np.array_equal(
                metrics.stage_histogram.sum(axis=1), metrics.stage_calls
            )


class TestExecutorInvariance:
    def test_deterministic_metrics_equal_across_executors(self, simulator, epoch):
        serial = _sweep(simulator, epoch, flow_engine="columnar", instrument=True)
        threaded = _sweep(
            simulator, epoch, flow_engine="columnar", instrument=True, max_workers=2
        )
        processes = _sweep(
            simulator,
            epoch,
            flow_engine="columnar",
            instrument=True,
            max_workers=2,
            executor="process",
        )
        for name in serial:
            reference = serial[name].metrics
            for other in (threaded[name].metrics, processes[name].metrics):
                # Durations are machine noise; everything the pipeline
                # *counts* must merge to exactly the serial values.
                assert np.array_equal(reference.stage_calls, other.stage_calls), name
                assert reference.counters == other.counters, name
                assert reference.gauges == other.gauges, name
            # And the statistics themselves stay executor-invariant.
            assert serial[name].steps == threaded[name].steps == processes[name].steps


class TestSweepProgress:
    def test_events_cover_the_whole_sweep(self, simulator, epoch):
        events: list[ProgressEvent] = []
        _sweep(simulator, epoch, progress=events.append)
        steps = int(DURATION_HOURS)
        assert [event.completed for event in events] == [
            len(SCENARIOS) * (index + 1) for index in range(steps)
        ]
        assert all(event.total == len(SCENARIOS) * steps for event in events)
        assert events[-1].completed == events[-1].total
        assert events[-1].eta_s == 0.0
        # A progress-observed sweep is traced internally, so per-stage
        # running means ride along on every event.
        assert dict(events[-1].stage_means_s)["routing"] > 0.0

    def test_process_executor_reports_chunk_completions(self, simulator, epoch):
        events: list[ProgressEvent] = []
        _sweep(
            simulator,
            epoch,
            progress=events.append,
            max_workers=2,
            executor="process",
        )
        total = len(SCENARIOS) * int(DURATION_HOURS)
        assert events  # one event per completed worker chunk
        assert events[-1].completed == total
        assert all(event.total == total for event in events)
        assert sum(1 for e in events) <= 2  # at most one event per chunk

    def test_grid_shares_one_tracker_across_designs(self, topology, epoch):
        events: list[ProgressEvent] = []
        scenarios = [SCENARIOS[0], SCENARIOS[1]]
        cells = run_grid(
            {"a": topology, "b": topology},
            scenarios,
            [GroundStation(c.name, c.latitude_deg, c.longitude_deg) for c in CITIES],
            epoch,
            DURATION_HOURS,
            traffic_model=GravityTrafficModel(cities=CITIES, total_demand=40.0),
            flows_per_step=10,
            backend="csgraph",
            instrument=True,
            progress=events.append,
        )
        total = 2 * len(scenarios) * int(DURATION_HOURS)
        assert events[-1].completed == events[-1].total == total
        # Monotone completion across the design boundary: one ETA stream.
        completed = [event.completed for event in events]
        assert completed == sorted(completed)
        for result in cells.values():
            assert isinstance(result.metrics, RunMetrics)
