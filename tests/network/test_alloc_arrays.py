"""Tests of the array-native allocation engine and the max-min bugfixes.

Three layers of guarantees:

* **equivalence** -- on random graphs (congested, zero-capacity,
  zero-demand, staggered freeze orderings) the array allocators must match
  the dict references within 1e-9, with identical link-utilisation keys;
* **regressions** -- the max-min reference used to burn its 100-round cap
  (one freeze per round on staggered demands silently stopped at round
  100) and to spin without progress once the increment hit zero while
  flows were unfrozen; the negative-headroom clamp must keep rates from
  ever decreasing;
* **integration** -- ``run_scenarios(allocator="max_min_array")`` must
  reproduce the dict-policy sweep across serial/thread/process executors
  and the networkx/csgraph backends.
"""

from __future__ import annotations

import numpy as np
import networkx as nx
import pytest

from repro.coverage.walker import WalkerDelta
from repro.demand.traffic_matrix import City, GravityTrafficModel
from repro.network.alloc_arrays import (
    FlowLinkSystem,
    allocate_max_min_array,
    allocate_proportional_array,
    compile_flow_link_system,
)
from repro.network.capacity import (
    ALLOCATORS,
    Flow,
    _link_key,
    allocate_max_min,
    allocate_proportional,
    get_allocator,
)
from repro.network.ground_station import GroundStation
from repro.network.simulation import NetworkSimulator, Scenario
from repro.network.topology import ConstellationTopology


def _assert_results_match(reference, candidate, tolerance: float = 1e-9):
    assert set(reference.allocated_gbps) == set(candidate.allocated_gbps)
    for name, rate in reference.allocated_gbps.items():
        assert candidate.allocated_gbps[name] == pytest.approx(rate, abs=tolerance)
    assert set(reference.link_utilisation) == set(candidate.link_utilisation)
    for key, value in reference.link_utilisation.items():
        assert candidate.link_utilisation[key] == pytest.approx(value, abs=tolerance)


def _random_problem(seed: int, congestion: float):
    """A random connected graph plus routed flows, with awkward edges mixed in.

    ``congestion`` scales demand against capacity; above ~1 most links
    saturate, exercising deep progressive-filling orderings.
    """
    rng = np.random.default_rng(seed)
    nodes = int(rng.integers(8, 24))
    graph = nx.Graph()
    # Random spanning tree keeps every destination reachable.
    order = rng.permutation(nodes)
    for position in range(1, nodes):
        a = int(order[position])
        b = int(order[int(rng.integers(0, position))])
        graph.add_edge(a, b)
    extra = int(rng.integers(nodes, 3 * nodes))
    for _ in range(extra):
        a, b = (int(x) for x in rng.integers(0, nodes, size=2))
        if a != b:
            graph.add_edge(a, b)
    for a, b in graph.edges:
        capacity = float(rng.uniform(1.0, 20.0))
        if rng.random() < 0.08:
            capacity = 0.0  # dead link: starvation convention must match
        graph.edges[a, b]["capacity_gbps"] = capacity
        graph.edges[a, b]["delay_ms"] = float(rng.uniform(1.0, 5.0))
    flows = []
    flow_count = int(rng.integers(4, 30))
    for index in range(flow_count):
        source, destination = (int(x) for x in rng.integers(0, nodes, size=2))
        if source == destination:
            continue
        path = tuple(nx.shortest_path(graph, source, destination, weight="delay_ms"))
        demand = float(rng.uniform(0.5, 8.0)) * congestion
        if rng.random() < 0.1:
            demand = 0.0  # zero-demand flows must stay frozen at zero
        flows.append(Flow(f"flow{index}", path, demand))
    return graph, flows


class TestEquivalenceOnRandomGraphs:
    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("congestion", [0.3, 1.5, 6.0])
    def test_proportional_matches_reference(self, seed, congestion):
        graph, flows = _random_problem(seed, congestion)
        _assert_results_match(
            allocate_proportional(graph, flows),
            allocate_proportional_array(graph, flows),
        )

    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("congestion", [0.3, 1.5, 6.0])
    def test_max_min_matches_reference(self, seed, congestion):
        graph, flows = _random_problem(seed, congestion)
        _assert_results_match(
            allocate_max_min(graph, flows),
            allocate_max_min_array(graph, flows),
        )

    def test_staggered_demands_freeze_in_order(self):
        """Demand-sorted freezing order: each round retires one flow."""
        graph = nx.Graph()
        graph.add_edge(0, 1, capacity_gbps=1000.0)
        flows = [Flow(f"f{k}", (0, 1), float(k)) for k in range(1, 30)]
        _assert_results_match(
            allocate_max_min(graph, flows), allocate_max_min_array(graph, flows)
        )

    def test_empty_flow_list(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, capacity_gbps=1.0)
        result = allocate_max_min_array(graph, [])
        assert result.allocated_gbps == {}
        assert result.link_utilisation == {}
        assert allocate_proportional_array(graph, []).allocated_gbps == {}

    def test_missing_link_rejected_like_reference(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, capacity_gbps=1.0)
        flows = [Flow("ghost", (0, 2), 1.0)]
        with pytest.raises(ValueError, match="not present"):
            allocate_proportional_array(graph, flows)
        with pytest.raises(ValueError, match="not present"):
            allocate_max_min_array(graph, flows)

    def test_duplicate_flow_names_rejected(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, capacity_gbps=1.0)
        flows = [Flow("dup", (0, 1), 1.0), Flow("dup", (0, 1), 2.0)]
        with pytest.raises(ValueError, match="unique"):
            allocate_max_min_array(graph, flows)


class TestMaxMinRegressions:
    def test_converges_beyond_former_iteration_cap(self):
        """150 staggered demands need 150 freeze rounds; the old 100-round
        cap silently returned the largest flows stuck near rate 100."""
        demands = list(range(1, 151))
        graph = nx.Graph()
        graph.add_edge(0, 1, capacity_gbps=float(sum(demands)) + 10.0)
        flows = [Flow(f"f{k}", (0, 1), float(k)) for k in demands]
        for allocator in (allocate_max_min, allocate_max_min_array):
            result = allocator(graph, flows)
            for k in demands:
                assert result.allocated_gbps[f"f{k}"] == pytest.approx(float(k))

    def test_explicit_iteration_cap_still_respected(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, capacity_gbps=10000.0)
        flows = [Flow(f"f{k}", (0, 1), float(k)) for k in range(1, 20)]
        for allocator in (allocate_max_min, allocate_max_min_array):
            capped = allocator(graph, flows, iterations=3)
            # Three rounds retire the three smallest flows; the rest remain
            # at the uniform fill level of round three.
            assert capped.allocated_gbps["f19"] == pytest.approx(3.0)

    def test_zero_increment_with_unfrozen_flows_terminates(self):
        """A bottleneck whose tiny positive headroom spreads below 1e-12 per
        flow never trips the absolute saturation tolerance; the allocator
        must freeze it directly instead of spinning (the reference now runs
        uncapped, so spinning would hang)."""
        member_count = 1200
        capacity = member_count * 1.0 + 1.15e-9
        graph = nx.Graph()
        graph.add_edge(1, 2, capacity_gbps=capacity)
        graph.add_edge(3, 4, capacity_gbps=1e6)
        flows = [Flow(f"m{k}", (1, 2), 2.0) for k in range(member_count)]
        # Demand exactly 1.0 makes the first round's increment bind on this
        # flow, leaving the shared link at headroom 1.15e-9 (> the 1e-9
        # saturation tolerance) with share ~9.6e-13 (< the 1e-12 floor).
        flows.append(Flow("pace", (3, 4), 1.0))
        for allocator in (allocate_max_min, allocate_max_min_array):
            result = allocator(graph, flows)
            assert result.allocated_gbps["pace"] == pytest.approx(1.0)
            for k in range(member_count):
                assert result.allocated_gbps[f"m{k}"] == pytest.approx(1.0, abs=1e-8)
            assert result.worst_link_utilisation() <= 1.0 + 1e-9

    def test_negative_headroom_never_drives_rates_down(self):
        """A (mis)configured negative-capacity link makes the raw increment
        negative; it must clamp at zero -- flows elsewhere keep filling and
        no rate ever goes negative."""
        graph = nx.Graph()
        graph.add_edge(0, 1, capacity_gbps=-5.0)
        graph.add_edge(2, 3, capacity_gbps=10.0)
        flows = [Flow("doomed", (0, 1), 4.0), Flow("fine", (2, 3), 4.0)]
        for allocator in (allocate_max_min, allocate_max_min_array):
            result = allocator(graph, flows)
            assert result.allocated_gbps["doomed"] == 0.0
            assert result.allocated_gbps["fine"] == pytest.approx(4.0)
            assert all(rate >= 0.0 for rate in result.allocated_gbps.values())

    def test_zero_capacity_link_convention(self):
        graph = nx.Graph()
        for a, b in ((0, 1), (1, 2)):
            graph.add_edge(a, b, capacity_gbps=10.0)
        graph.edges[1, 2]["capacity_gbps"] = 0.0
        flows = [Flow("dead", (0, 1, 2), 4.0), Flow("live", (0, 1), 6.0)]
        for allocator in (allocate_max_min_array, allocate_proportional_array):
            result = allocator(graph, flows)
            assert result.allocated_gbps["dead"] == pytest.approx(0.0, abs=1e-9)
            assert result.allocated_gbps["live"] == pytest.approx(6.0, abs=1e-6)
            assert result.link_utilisation[(1, 2)] == 1.0


class TestLinkKeyNormalisation:
    def test_numeric_pairs_order_numerically(self):
        # str-ordering placed 10 before 2 ("10" < "2"); the normalised key
        # orders satellite ids numerically.
        assert _link_key(10, 2) == (2, 10)
        assert _link_key(2, 10) == (2, 10)

    def test_mixed_pairs_place_numbers_first(self):
        assert _link_key("gs:London", 7) == (7, "gs:London")
        assert _link_key(7, "gs:London") == (7, "gs:London")

    def test_string_pairs_order_lexicographically(self):
        assert _link_key("gs:b", "gs:a") == ("gs:a", "gs:b")

    def test_reference_and_array_produce_identical_keys(self):
        graph = nx.Graph()
        graph.add_edge(2, 10, capacity_gbps=5.0)
        graph.add_edge(10, 11, capacity_gbps=5.0)
        flows = [Flow("f", (2, 10, 11), 3.0)]
        reference = allocate_proportional(graph, flows)
        candidate = allocate_proportional_array(graph, flows)
        assert set(reference.link_utilisation) == {(2, 10), (10, 11)}
        assert set(candidate.link_utilisation) == {(2, 10), (10, 11)}


class TestCompilation:
    def test_registry_exposes_array_allocators(self):
        assert get_allocator("proportional_array") is allocate_proportional_array
        assert get_allocator("max_min_array") is allocate_max_min_array
        assert ALLOCATORS["max_min_array"].uses_arrays

    def test_system_shape(self):
        graph = nx.Graph()
        for a, b in ((0, 1), (1, 2), (2, 3)):
            graph.add_edge(a, b, capacity_gbps=7.0)
        flows = [Flow("a", (0, 1, 2), 1.0), Flow("b", (1, 2, 3), 1.0)]
        system = compile_flow_link_system(graph, flows)
        assert isinstance(system, FlowLinkSystem)
        assert system.flow_count == 2
        assert system.link_count == 3  # (0,1), (1,2) shared, (2,3)
        assert system.flow_ids.size == 4
        assert np.all(system.capacity == 7.0)
        loads = system.link_loads(np.array([1.0, 1.0]))
        assert loads[list(system.link_keys).index((1, 2))] == pytest.approx(2.0)

    def test_index_path_matches_graph_path(self):
        """Compiling from path_rows against an edge-list view must produce
        the same allocation as label-path compilation over the graph."""
        from repro.network.backends import SnapshotEdgeList
        from repro.network.simulation import _EdgeListCapacityView

        labels = (0, 1, 2, 3, "gs:x")
        a = np.array([0, 1, 2, 0], dtype=np.intp)
        b = np.array([1, 2, 3, 4], dtype=np.intp)
        capacity = np.array([4.0, 2.0, 6.0, 8.0])
        edge_list = SnapshotEdgeList(
            labels=labels,
            a=a,
            b=b,
            distance_km=np.ones(4),
            delay_ms=np.ones(4),
            capacity_gbps=capacity,
        )
        view = _EdgeListCapacityView(edge_list)
        flows_rows = [
            Flow("f1", ("gs:x", 0, 1, 2), 5.0, path_rows=(4, 0, 1, 2)),
            Flow("f2", (1, 2, 3), 3.0, path_rows=(1, 2, 3)),
        ]
        flows_labels = [
            Flow("f1", ("gs:x", 0, 1, 2), 5.0),
            Flow("f2", (1, 2, 3), 3.0),
        ]
        graph = edge_list.graph()
        for allocator in (allocate_max_min_array, allocate_proportional_array):
            _assert_results_match(
                allocator(graph, flows_labels), allocator(view, flows_rows)
            )

    def test_index_path_rejects_foreign_rows(self):
        from repro.network.backends import SnapshotEdgeList
        from repro.network.simulation import _EdgeListCapacityView

        edge_list = SnapshotEdgeList(
            labels=(0, 1),
            a=np.array([0], dtype=np.intp),
            b=np.array([1], dtype=np.intp),
            distance_km=np.ones(1),
            delay_ms=np.ones(1),
            capacity_gbps=np.array([1.0]),
        )
        view = _EdgeListCapacityView(edge_list)
        # Rows point at the wrong labels for this snapshot.
        flows = [Flow("f", (1, 0), 1.0, path_rows=(0, 1))]
        with pytest.raises(ValueError, match="label table"):
            allocate_max_min_array(view, flows)

    def test_flow_path_rows_validation(self):
        with pytest.raises(ValueError, match="mirror"):
            Flow("f", (0, 1, 2), 1.0, path_rows=(0, 1))
        # path_rows never affect flow equality.
        assert Flow("f", (0, 1), 1.0, path_rows=(0, 1)) == Flow("f", (0, 1), 1.0)


CITIES = (
    City("London", 51.5, -0.1, 9.6),
    City("New York", 40.7, -74.0, 20.0),
    City("Tokyo", 35.7, 139.7, 37.0),
    City("Sao Paulo", -23.6, -46.6, 22.0),
)


@pytest.fixture(scope="module")
def simulator(epoch) -> NetworkSimulator:
    wd = WalkerDelta(
        altitude_km=560.0, inclination_deg=65.0, total_satellites=180, planes=10, phasing=1
    )
    elements = wd.satellite_elements()
    per_plane = wd.satellites_per_plane
    topology = ConstellationTopology(
        planes=[elements[i * per_plane : (i + 1) * per_plane] for i in range(wd.planes)],
        epoch=epoch,
    )
    stations = [GroundStation(c.name, c.latitude_deg, c.longitude_deg) for c in CITIES]
    return NetworkSimulator(
        topology=topology,
        ground_stations=stations,
        # High total demand congests the snapshot links, so the allocator
        # actually shapes the delivered traffic.
        traffic_model=GravityTrafficModel(cities=CITIES, total_demand=400.0),
        flows_per_step=10,
    )


SCENARIOS = [
    Scenario(name="prop", allocator="proportional"),
    Scenario(name="prop_array", allocator="proportional_array"),
    Scenario(name="mm", allocator="max_min"),
    Scenario(name="mm_array", allocator="max_min_array"),
]


def _assert_steps_close(steps_a, steps_b):
    assert len(steps_a) == len(steps_b)
    for a, b in zip(steps_a, steps_b):
        assert a.offered_gbps == pytest.approx(b.offered_gbps, abs=1e-9)
        assert a.delivered_gbps == pytest.approx(b.delivered_gbps, abs=1e-9)
        assert a.worst_link_utilisation == pytest.approx(
            b.worst_link_utilisation, abs=1e-9
        )
        assert a.reachable_fraction == b.reachable_fraction


class TestSweepIntegration:
    def test_array_policies_match_dict_policies(self, simulator, epoch):
        for backend in ("networkx", "csgraph"):
            sweep = simulator.run_scenarios(
                SCENARIOS, epoch, duration_hours=3.0, backend=backend
            )
            _assert_steps_close(sweep["prop"].steps, sweep["prop_array"].steps)
            _assert_steps_close(sweep["mm"].steps, sweep["mm_array"].steps)
            # The sweep must actually hit congestion for this to mean much.
            assert any(
                step.worst_link_utilisation >= 1.0 - 1e-6
                for step in sweep["mm_array"].steps
            )

    def test_array_policy_identical_across_backends(self, simulator, epoch):
        scenarios = [Scenario(name="mm_array", allocator="max_min_array")]
        reference = simulator.run_scenarios(scenarios, epoch, duration_hours=3.0)
        candidate = simulator.run_scenarios(
            scenarios, epoch, duration_hours=3.0, backend="csgraph"
        )
        _assert_steps_close(reference["mm_array"].steps, candidate["mm_array"].steps)

    def test_array_policy_identical_across_executors(self, simulator, epoch):
        serial = simulator.run_scenarios(
            SCENARIOS, epoch, duration_hours=2.0, backend="csgraph"
        )
        threaded = simulator.run_scenarios(
            SCENARIOS, epoch, duration_hours=2.0, backend="csgraph", max_workers=3
        )
        pooled = simulator.run_scenarios(
            SCENARIOS,
            epoch,
            duration_hours=2.0,
            backend="csgraph",
            max_workers=2,
            executor="process",
        )
        for name in ("prop_array", "mm_array"):
            assert threaded[name].steps == serial[name].steps
            assert pooled[name].steps == serial[name].steps

    def test_run_accepts_array_allocator(self, simulator, epoch):
        reference = simulator.run(epoch, duration_hours=2.0, allocator="max_min")
        candidate = simulator.run(
            epoch, duration_hours=2.0, allocator="max_min_array", backend="csgraph"
        )
        _assert_steps_close(reference.steps, candidate.steps)
