"""Tests of the cached incremental snapshot-graph engine."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.coverage.walker import WalkerDelta
from repro.network.ground_station import GroundStation
from repro.network.isl import isl_feasible
from repro.network.topology import ConstellationTopology, SnapshotSequence
from repro.orbits.elements import OrbitalElements
from repro.orbits.time import epoch_range


@pytest.fixture(scope="module")
def walker_topology(epoch) -> ConstellationTopology:
    wd = WalkerDelta(
        altitude_km=560.0, inclination_deg=65.0, total_satellites=120, planes=8, phasing=1
    )
    elements = wd.satellite_elements()
    per_plane = wd.satellites_per_plane
    planes = [elements[i * per_plane : (i + 1) * per_plane] for i in range(wd.planes)]
    return ConstellationTopology(planes=planes, epoch=epoch)


@pytest.fixture(scope="module")
def stations() -> list[GroundStation]:
    return [
        GroundStation("London", 51.5, -0.1),
        GroundStation("New York", 40.7, -74.0),
        GroundStation("Tokyo", 35.7, 139.7),
    ]


def _assert_graphs_identical(graph, reference):
    assert set(graph.nodes) == set(reference.nodes)
    assert set(map(frozenset, graph.edges)) == set(map(frozenset, reference.edges))
    for a, b, data in reference.edges(data=True):
        assert graph.edges[a, b] == data


class TestSnapshotSequenceEquivalence:
    def test_incremental_graphs_match_fresh_builds_over_multiple_orbits(
        self, walker_topology, stations, epoch
    ):
        # ~1.6 orbits at 4-minute steps: link sets churn many times, so the
        # incremental diff path is exercised through adds, removals and
        # attribute refreshes.
        epochs = epoch_range(epoch, 2.0 * 5760.0, 240.0)
        sequence = walker_topology.snapshot_sequence(epochs, stations)
        for at, graph in zip(epochs, sequence.graphs(copy=True)):
            _assert_graphs_identical(graph, walker_topology.snapshot_graph(at, stations))

    def test_edge_sets_actually_change_between_steps(
        self, walker_topology, stations, epoch
    ):
        epochs = epoch_range(epoch, 2.0 * 5760.0, 240.0)
        edge_sets = [
            frozenset(map(frozenset, graph.edges))
            for graph in walker_topology.snapshot_sequence(epochs, stations).graphs()
        ]
        assert len(set(edge_sets)) > 1

    def test_wrappers_route_through_sequence(self, walker_topology, stations, epoch):
        epochs = epoch_range(epoch, 600.0, 300.0)
        listed = walker_topology.snapshot_graphs(epochs, stations)
        iterated = list(walker_topology.iter_snapshot_graphs(epochs, stations))
        assert len(listed) == len(iterated) == 2
        for a, b in zip(listed, iterated):
            _assert_graphs_identical(a, b)


class TestSnapshotSequenceSemantics:
    def test_copy_true_yields_independent_graphs(self, walker_topology, stations, epoch):
        epochs = epoch_range(epoch, 1800.0, 600.0)
        graphs = list(walker_topology.snapshot_sequence(epochs, stations).graphs(copy=True))
        assert len({id(graph) for graph in graphs}) == len(graphs)
        # Stored copies stay valid: each matches its own fresh rebuild.
        for at, graph in zip(epochs, graphs):
            _assert_graphs_identical(graph, walker_topology.snapshot_graph(at, stations))

    def test_copy_false_yields_live_graph(self, walker_topology, stations, epoch):
        epochs = epoch_range(epoch, 1800.0, 600.0)
        stream = walker_topology.snapshot_sequence(epochs, stations).graphs(copy=False)
        identities = {id(graph) for graph in stream}
        assert len(identities) == 1

    def test_station_subset_streams(self, walker_topology, stations, epoch):
        epochs = epoch_range(epoch, 1200.0, 600.0)
        sequence = walker_topology.snapshot_sequence(epochs, stations)
        subset = ["London", "Tokyo"]
        for at, graph in zip(epochs, sequence.graphs(station_names=subset)):
            reference = walker_topology.snapshot_graph(
                at, [s for s in stations if s.name in subset]
            )
            _assert_graphs_identical(graph, reference)
        with pytest.raises(ValueError):
            next(sequence.graphs(station_names=["Atlantis"]))

    def test_validation(self, walker_topology, stations):
        with pytest.raises(ValueError):
            SnapshotSequence(walker_topology, [])
        with pytest.raises(ValueError):
            SnapshotSequence(
                walker_topology,
                [walker_topology.epoch],
                [GroundStation("X", 0.0, 0.0), GroundStation("X", 1.0, 1.0)],
            )

    def test_len_and_iter(self, walker_topology, stations, epoch):
        epochs = epoch_range(epoch, 1800.0, 600.0)
        sequence = walker_topology.snapshot_sequence(epochs, stations)
        assert len(sequence) == 3
        assert sequence.epochs == epochs
        assert [s.name for s in sequence.ground_stations] == [s.name for s in stations]
        assert sum(1 for _ in sequence) == 3


def _circular_plane(raan_deg: float, anomalies_deg: list[float]) -> list[OrbitalElements]:
    return [
        OrbitalElements(
            semi_major_axis_km=6378.137 + 800.0,
            inclination_rad=math.radians(60.0),
            raan_rad=math.radians(raan_deg),
            true_anomaly_rad=math.radians(anomaly),
        )
        for anomaly in anomalies_deg
    ]


class TestNearestScanTieBreaking:
    """Exact-tie determinism of the (k-)nearest candidate scans.

    Two candidates at bit-identical distance must resolve to the lower
    index, for the default nearest policy (regression: the k-ary rewrite
    must not change PR 2's argmin behaviour) and inside k-nearest picks.
    """

    def _tied_positions(self):
        # Satellite 0 scans candidates 1-3; candidates 1 and 2 are exactly
        # 100 km away on opposite sides, candidate 3 is farther.
        return np.array(
            [
                [
                    [7000.0, 0.0, 0.0],
                    [7000.0, 100.0, 0.0],
                    [7000.0, -100.0, 0.0],
                    [7000.0, 250.0, 0.0],
                ]
            ]
        )

    def test_nearest_resolves_ties_to_lower_index(self):
        from repro.network.isl import ISLConfig
        from repro.network.topology import _NearestScan, _nearest_scan_arrays

        scan = _NearestScan(
            a_indices=np.array([0], dtype=np.intp),
            b_indices=np.array([1, 2, 3], dtype=np.intp),
            config=ISLConfig(),
        )
        a_ids, b_nearest, distances, feasible = _nearest_scan_arrays(
            self._tied_positions(), scan
        )
        assert list(a_ids) == [0]
        assert b_nearest[0, 0] == 1
        assert distances[0, 0] == pytest.approx(100.0)
        assert feasible[0, 0]

    def test_k_nearest_orders_ties_by_index(self):
        from repro.network.isl import ISLConfig
        from repro.network.topology import _NearestScan, _nearest_scan_arrays

        scan = _NearestScan(
            a_indices=np.array([0], dtype=np.intp),
            b_indices=np.array([1, 2, 3], dtype=np.intp),
            config=ISLConfig(),
            k=2,
        )
        a_ids, b_nearest, distances, feasible = _nearest_scan_arrays(
            self._tied_positions(), scan
        )
        assert list(a_ids) == [0, 0]
        assert list(b_nearest[0]) == [1, 2]
        assert list(distances[0]) == pytest.approx([100.0, 100.0])

    def test_k_clamps_to_candidate_count(self):
        from repro.network.isl import ISLConfig
        from repro.network.topology import _NearestScan, _nearest_scan_arrays

        scan = _NearestScan(
            a_indices=np.array([0], dtype=np.intp),
            b_indices=np.array([1, 2, 3], dtype=np.intp),
            config=ISLConfig(),
            k=9,
        )
        a_ids, b_nearest, distances, _ = _nearest_scan_arrays(
            self._tied_positions(), scan
        )
        assert list(a_ids) == [0, 0, 0]
        assert list(b_nearest[0]) == [1, 2, 3]


class TestInterPlaneSymmetry:
    """Regression: inter-plane links must be scanned in both directions.

    The nearest-neighbour relation is not symmetric -- satellite A's nearest
    in the next plane may differ from who picks A -- so each satellite must
    also link to its nearest feasible neighbour in the *previous* plane.  The
    seed only scanned plane ``p -> p+1``, which silently dropped the reverse
    picks for constellations with three or more planes.
    """

    def _assert_nearest_links_both_ways(self, topology):
        graph = topology.snapshot_graph()
        positions = topology.positions_ecef_km()
        offsets, starts = [], 0
        for plane in topology.planes:
            offsets.append(starts)
            starts += len(plane)
        plane_count = topology.plane_count
        for plane_index in range(plane_count):
            for neighbour in ((plane_index + 1) % plane_count, (plane_index - 1) % plane_count):
                if neighbour == plane_index:
                    continue
                start_a = offsets[plane_index]
                start_b = offsets[neighbour]
                block_b = positions[start_b : start_b + len(topology.planes[neighbour])]
                for local_a in range(len(topology.planes[plane_index])):
                    a = start_a + local_a
                    distances = np.linalg.norm(block_b - positions[a], axis=1)
                    b = start_b + int(np.argmin(distances))
                    if isl_feasible(positions[a], positions[b], topology.isl_config):
                        assert graph.has_edge(a, b), (
                            f"satellite {a} (plane {plane_index}) is missing the link "
                            f"to its nearest neighbour {b} in plane {neighbour}"
                        )

    def test_asymmetric_two_plane_layout(self, epoch):
        # Deliberately asymmetric phasing: the two planes have different slot
        # counts, so who-picks-whom differs between the directions.
        topology = ConstellationTopology(
            planes=[
                _circular_plane(0.0, [0.0, 180.0]),
                _circular_plane(4.0, [10.0, 100.0, 190.0, 280.0]),
            ],
            epoch=epoch,
        )
        self._assert_nearest_links_both_ways(topology)

    def test_asymmetric_three_plane_layout(self, epoch):
        # With >= 3 planes the seed's p -> p+1 scan never let a plane pick
        # into its previous plane; this layout exposes exactly that.
        topology = ConstellationTopology(
            planes=[
                _circular_plane(0.0, [0.0, 120.0, 240.0]),
                _circular_plane(5.0, [36.0, 108.0, 180.0, 252.0, 324.0]),
                _circular_plane(10.0, [60.0, 180.0, 300.0]),
            ],
            epoch=epoch,
        )
        self._assert_nearest_links_both_ways(topology)

    def test_reverse_scan_adds_links_the_forward_scan_misses(self, epoch):
        """At least one edge of the fixed graph only exists because of the
        previous-plane scan (otherwise the fixture would not be a regression
        test at all)."""
        topology = ConstellationTopology(
            planes=[
                _circular_plane(0.0, [0.0, 120.0, 240.0]),
                _circular_plane(5.0, [36.0, 108.0, 180.0, 252.0, 324.0]),
                _circular_plane(10.0, [60.0, 180.0, 300.0]),
            ],
            epoch=epoch,
        )
        positions = topology.positions_ecef_km()
        offsets = [0]
        for plane in topology.planes[:-1]:
            offsets.append(offsets[-1] + len(plane))

        forward_edges = set()
        for plane_index in range(topology.plane_count):
            neighbour = (plane_index + 1) % topology.plane_count
            start_a, start_b = offsets[plane_index], offsets[neighbour]
            block_b = positions[start_b : start_b + len(topology.planes[neighbour])]
            for local_a in range(len(topology.planes[plane_index])):
                a = start_a + local_a
                distances = np.linalg.norm(block_b - positions[a], axis=1)
                b = start_b + int(np.argmin(distances))
                if isl_feasible(positions[a], positions[b], topology.isl_config):
                    forward_edges.add(frozenset((a, b)))

        graph = topology.snapshot_graph()
        inter_plane_edges = {
            frozenset((a, b))
            for a, b in graph.edges
            if isinstance(a, int)
            and isinstance(b, int)
            and graph.nodes[a]["plane"] != graph.nodes[b]["plane"]
        }
        assert inter_plane_edges - forward_edges, (
            "expected the previous-plane scan to contribute links the "
            "forward-only seed scan missed"
        )
