"""Shared configuration for the benchmark harness.

Each benchmark regenerates the data behind one figure of the paper and prints
the series it produces, so `pytest benchmarks/ --benchmark-only` doubles as
the reproduction run recorded in EXPERIMENTS.md.  Heavy sweeps run with a
single round to keep the full harness in the minutes range.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help=(
            "shrink benchmark problem sizes and relax speedup floors so the "
            "harness doubles as a fast CI correctness check"
        ),
    )
    parser.addoption(
        "--backend",
        action="store",
        default="networkx",
        choices=("networkx", "csgraph"),
        help=(
            "routing backend the simulation benchmarks drive the sweep "
            "engine with (see repro.network.backends.BACKENDS)"
        ),
    )


@pytest.fixture()
def smoke(request) -> bool:
    """Whether the harness runs in CI smoke mode (small sizes, lax floors)."""
    return request.config.getoption("--smoke")


@pytest.fixture()
def backend(request) -> str:
    """Routing-backend name selected on the command line (--backend)."""
    return request.config.getoption("--backend")


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under the benchmark fixture."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture()
def once():
    """Fixture exposing the single-round benchmark helper."""
    return run_once
