"""Shared configuration for the benchmark harness.

Each benchmark regenerates the data behind one figure of the paper and prints
the series it produces, so `pytest benchmarks/ --benchmark-only` doubles as
the reproduction run recorded in EXPERIMENTS.md.  Heavy sweeps run with a
single round to keep the full harness in the minutes range.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help=(
            "shrink benchmark problem sizes and relax speedup floors so the "
            "harness doubles as a fast CI correctness check"
        ),
    )


@pytest.fixture()
def smoke(request) -> bool:
    """Whether the harness runs in CI smoke mode (small sizes, lax floors)."""
    return request.config.getoption("--smoke")


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under the benchmark fixture."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture()
def once():
    """Fixture exposing the single-round benchmark helper."""
    return run_once
