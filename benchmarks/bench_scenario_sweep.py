"""Benchmark: scenario-sweep engine against the seed's monolithic run loop.

Before this engine existed, every traffic scenario paid the full simulation
stack from scratch: per-step scalar propagation, a fresh ``nx.Graph`` built
edge by edge in Python, per-scenario routing and a fresh gravity matrix per
step.  The sweep engine amortises one batched propagation, one vectorised
feasibility pass, incrementally updated snapshot graphs, shared per-step
Dijkstra results and a 24-hour traffic-matrix cache across all scenarios.

This benchmark times a 4-scenario sweep three ways --

* ``monolithic``: four seed-style independent runs (the pre-engine cost);
* ``independent``: four independent ``NetworkSimulator.run`` calls on the
  new engine (what a user who ignores ``run_scenarios`` pays today);
* ``sweep``: one ``run_scenarios`` call

-- asserts the sweep beats the monolithic baseline by the speedup floor,
asserts sweep results are *identical* to the independent new-engine runs,
and separately measures the incremental snapshot-graph reuse against
per-step full rebuilds.

Run ``pytest benchmarks/bench_scenario_sweep.py`` (add ``--smoke`` for the
small CI configuration).
"""

from __future__ import annotations

import time

import networkx as nx
import numpy as np

from repro.coverage.walker import WalkerDelta
from repro.demand.traffic_matrix import City, GravityTrafficModel
from repro.network.ground_station import GroundStation, visible_satellites
from repro.network.isl import isl_feasible, propagation_delay_ms
from repro.network.routing import SnapshotRouter
from repro.network.simulation import NetworkSimulator, Scenario, SimulationResult
from repro.network.topology import ConstellationTopology
from repro.orbits.time import Epoch, epoch_range, step_count

CITIES = (
    City("London", 51.5, -0.1, 9.6),
    City("New York", 40.7, -74.0, 20.0),
    City("Tokyo", 35.7, 139.7, 37.0),
    City("Sao Paulo", -23.6, -46.6, 22.0),
    City("Delhi", 28.6, 77.2, 32.0),
    City("Lagos", 6.5, 3.4, 15.0),
)

SCENARIOS = [
    Scenario(name="baseline"),
    Scenario(name="peak_demand", demand_multiplier=2.0),
    Scenario(name="max_min", allocator="max_min"),
    Scenario(name="flow_budget", flows_per_step=8),
]


def _walker_topology(epoch: Epoch, satellites: int, planes: int) -> ConstellationTopology:
    wd = WalkerDelta(
        altitude_km=560.0,
        inclination_deg=65.0,
        total_satellites=satellites,
        planes=planes,
        phasing=1,
    )
    elements = wd.satellite_elements()
    per_plane = wd.satellites_per_plane
    return ConstellationTopology(
        planes=[elements[i * per_plane : (i + 1) * per_plane] for i in range(wd.planes)],
        epoch=epoch,
    )


# -- seed baseline (kept for timing only) ---------------------------------------
#
# A faithful reconstruction of the pre-engine simulation step: the graph is
# rebuilt from nothing with per-edge Python feasibility calls, inter-plane
# links scan only plane p -> p+1 (the seed's asymmetric-link bug, retained so
# the baseline times exactly what the seed executed), and nothing is cached
# between steps or scenarios.  Its *results* therefore differ slightly from
# the engine's (the engine also links each satellite to its nearest neighbour
# in the previous plane); correctness equivalence is asserted against
# independent runs of the new engine instead.


def _seed_graph_from_positions(topology, positions, ground_stations):
    graph = nx.Graph()
    for node in topology.nodes:
        graph.add_node(
            node.node_id, plane=node.plane_index, slot=node.slot_index, kind="satellite"
        )

    def add_edge(a, b, distance):
        graph.add_edge(
            a,
            b,
            distance_km=distance,
            delay_ms=propagation_delay_ms(distance),
            capacity_gbps=topology.isl_config.capacity_gbps,
        )

    offset = 0
    for plane in topology.planes:
        count = len(plane)
        for slot in range(count):
            if count < 2:
                break
            a = offset + slot
            b = offset + (slot + 1) % count
            if count == 2 and graph.has_edge(a, b):
                continue
            if isl_feasible(positions[a], positions[b], topology.isl_config):
                add_edge(a, b, float(np.linalg.norm(positions[a] - positions[b])))
        offset += count

    plane_offsets = []
    offset = 0
    for plane in topology.planes:
        plane_offsets.append(offset)
        offset += len(plane)
    for plane_index in range(topology.plane_count):
        next_plane = (plane_index + 1) % topology.plane_count
        if next_plane == plane_index:
            continue
        start_a = plane_offsets[plane_index]
        start_b = plane_offsets[next_plane]
        positions_b = positions[start_b : start_b + len(topology.planes[next_plane])]
        for slot_a in range(len(topology.planes[plane_index])):
            a = start_a + slot_a
            distances = np.linalg.norm(positions_b - positions[a], axis=1)
            b_local = int(np.argmin(distances))
            b = start_b + b_local
            if isl_feasible(positions[a], positions[b], topology.isl_config):
                add_edge(a, b, float(distances[b_local]))

    for station in ground_stations:
        gs_node = f"gs:{station.name}"
        graph.add_node(
            gs_node,
            kind="ground",
            latitude_deg=station.latitude_deg,
            longitude_deg=station.longitude_deg,
        )
        for sat_index in visible_satellites(station, positions):
            add_edge(
                gs_node,
                int(sat_index),
                float(np.linalg.norm(positions[sat_index] - station.position_ecef_km())),
            )
    return graph


def _seed_monolithic_run(simulator, scenario, start, duration_hours, step_hours):
    """The seed's run() loop: rebuild graph and matrix every step, no sharing."""
    station_names = tuple(station.name for station in simulator.ground_stations)
    result = SimulationResult()
    for index in range(step_count(duration_hours, step_hours)):
        at = start.add_seconds(index * step_hours * 3600.0)
        utc_hour = (start.fraction_of_day() * 24.0 + index * step_hours) % 24.0
        matrix = simulator.traffic_model.matrix_at(utc_hour)
        positions = simulator.topology.positions_ecef_km(at)
        graph = _seed_graph_from_positions(
            simulator.topology, positions, simulator.ground_stations
        )
        stats, _, _ = simulator._simulate_step(
            SnapshotRouter(graph), graph, matrix, scenario, station_names, utc_hour
        )
        result.steps.append(stats)
    return result


# -- the comparison --------------------------------------------------------------


def _run_comparison(smoke: bool, backend: str = "networkx"):
    epoch = Epoch.from_calendar(2025, 3, 20, 12, 0, 0.0)
    satellites, planes = (180, 10) if smoke else (576, 24)
    duration_hours = 6.0 if smoke else 24.0
    topology = _walker_topology(epoch, satellites, planes)
    stations = [GroundStation(c.name, c.latitude_deg, c.longitude_deg) for c in CITIES]
    model = GravityTrafficModel(cities=CITIES, total_demand=60.0)
    simulator = NetworkSimulator(
        topology=topology, ground_stations=stations, traffic_model=model, flows_per_step=12
    )

    # Warm both code paths (numpy dispatch, networkx decorators).
    simulator.run_scenarios(SCENARIOS, epoch, duration_hours=1.0, backend=backend)
    _seed_monolithic_run(simulator, SCENARIOS[0], epoch, 1.0, 1.0)

    begin = time.perf_counter()
    monolithic = {
        scenario.name: _seed_monolithic_run(
            simulator, scenario, epoch, duration_hours, 1.0
        )
        for scenario in SCENARIOS
    }
    monolithic_s = time.perf_counter() - begin

    begin = time.perf_counter()
    independent = {
        "baseline": simulator.run(epoch, duration_hours, backend=backend),
        "peak_demand": simulator.run_scenarios(
            [SCENARIOS[1]], epoch, duration_hours, backend=backend
        )["peak_demand"],
        "max_min": simulator.run(
            epoch, duration_hours, allocator="max_min", backend=backend
        ),
        "flow_budget": NetworkSimulator(
            topology=topology,
            ground_stations=stations,
            traffic_model=model,
            flows_per_step=SCENARIOS[3].flows_per_step,
        ).run(epoch, duration_hours, backend=backend),
    }
    independent_s = time.perf_counter() - begin

    begin = time.perf_counter()
    sweep = simulator.run_scenarios(SCENARIOS, epoch, duration_hours, backend=backend)
    sweep_s = time.perf_counter() - begin

    identical = all(
        sweep[name].steps == independent[name].steps for name in independent
    )

    # Incremental snapshot reuse vs rebuilding each step's graph from nothing.
    epochs = epoch_range(epoch, duration_hours * 3600.0, 3600.0)
    begin = time.perf_counter()
    for _ in topology.snapshot_sequence(epochs, stations).graphs(copy=False):
        pass
    incremental_s = time.perf_counter() - begin
    begin = time.perf_counter()
    for at in epochs:
        topology.snapshot_graph(at, stations)
    rebuild_s = time.perf_counter() - begin

    return {
        "satellites": satellites,
        "steps": len(epochs),
        "scenarios": len(SCENARIOS),
        "backend": backend,
        "monolithic_s": monolithic_s,
        "independent_s": independent_s,
        "sweep_s": sweep_s,
        "sweep_speedup": monolithic_s / sweep_s,
        "independent_speedup": independent_s / sweep_s,
        "identical": identical,
        "rebuild_s": rebuild_s,
        "incremental_s": incremental_s,
        "incremental_speedup": rebuild_s / incremental_s,
        "monolithic_delivery": {
            name: result.mean_delivery_ratio() for name, result in monolithic.items()
        },
        "sweep_delivery": {
            name: result.mean_delivery_ratio() for name, result in sweep.items()
        },
    }


def test_scenario_sweep_speedup(benchmark, once, smoke, backend):
    sweep_floor = 2.0 if smoke else 5.0
    incremental_floor = 1.1 if smoke else 1.2

    stats = once(benchmark, _run_comparison, smoke, backend)
    benchmark.extra_info.update(
        {
            key: stats[key]
            for key in (
                "satellites",
                "steps",
                "scenarios",
                "backend",
                "sweep_speedup",
                "independent_speedup",
                "incremental_speedup",
            )
        }
    )

    print(
        f"\n{stats['satellites']} satellites, {stats['steps']} steps, "
        f"{stats['scenarios']} scenarios, backend {stats['backend']}:"
    )
    print(
        f"  seed monolithic runs: {stats['monolithic_s']:.2f} s, "
        f"independent engine runs: {stats['independent_s']:.2f} s, "
        f"sweep: {stats['sweep_s']:.2f} s"
    )
    print(
        f"  sweep speedup: {stats['sweep_speedup']:.1f}x vs seed, "
        f"{stats['independent_speedup']:.1f}x vs independent engine runs"
    )
    print(
        f"  snapshot graphs: rebuild {stats['rebuild_s']*1e3:.0f} ms vs incremental "
        f"{stats['incremental_s']*1e3:.0f} ms -> {stats['incremental_speedup']:.1f}x"
    )
    for name in stats["sweep_delivery"]:
        print(
            f"  {name}: delivery {stats['sweep_delivery'][name]:.3f} "
            f"(seed baseline {stats['monolithic_delivery'][name]:.3f})"
        )

    assert stats["identical"], "sweep results must match independent engine runs"
    assert stats["sweep_speedup"] >= sweep_floor
    assert stats["independent_speedup"] > 1.0
    assert stats["incremental_speedup"] >= incremental_floor
