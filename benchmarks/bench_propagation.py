"""Benchmark: vectorised batch propagation against the seed's scalar loop.

The seed computed every topology snapshot by constructing a fresh scalar
``J2Propagator`` per satellite and rotating each position into ECEF one at a
time; the batch engine propagates the whole constellation in array
operations.  This benchmark times both paths on a 360-satellite Walker shell
(the position computation behind ``ConstellationTopology.snapshot_graph``)
and asserts the batch path is at least 5x faster while agreeing with the
scalar reference to 1e-9 km.
"""

from __future__ import annotations

import time

import numpy as np

from repro.coverage.walker import WalkerDelta
from repro.network.topology import ConstellationTopology
from repro.orbits.frames import eci_to_ecef
from repro.orbits.propagation import J2Propagator
from repro.orbits.time import Epoch

SATELLITES = 360
PLANES = 18
SPEEDUP_FLOOR = 5.0
AGREEMENT_KM = 1e-9


def _walker_topology(epoch: Epoch) -> ConstellationTopology:
    wd = WalkerDelta(
        altitude_km=560.0,
        inclination_deg=65.0,
        total_satellites=SATELLITES,
        planes=PLANES,
        phasing=1,
    )
    elements = wd.satellite_elements()
    per_plane = wd.satellites_per_plane
    planes = [elements[i * per_plane : (i + 1) * per_plane] for i in range(wd.planes)]
    return ConstellationTopology(planes=planes, epoch=epoch)


def _scalar_positions_ecef(topology: ConstellationTopology, at: Epoch) -> np.ndarray:
    """The seed's per-satellite position loop, kept as the timing baseline."""
    positions = np.empty((topology.satellite_count, 3))
    for node in topology.nodes:
        state = J2Propagator(node.elements, topology.epoch).state_at(at)
        positions[node.node_id] = eci_to_ecef(state.position_km, at)
    return positions


def _best_of(repeats: int, function, *args) -> tuple[float, np.ndarray]:
    best = float("inf")
    value = None
    for _ in range(repeats):
        begin = time.perf_counter()
        value = function(*args)
        best = min(best, time.perf_counter() - begin)
    return best, value


def _run_comparison():
    epoch = Epoch.from_calendar(2025, 3, 20, 12, 0, 0.0)
    topology = _walker_topology(epoch)
    at = epoch.add_seconds(1800.0)

    # Warm both paths once so timings exclude first-call overheads.
    topology.positions_ecef_km(at)
    _scalar_positions_ecef(topology, at)

    scalar_s, scalar_positions = _best_of(3, _scalar_positions_ecef, topology, at)
    batch_s, batch_positions = _best_of(10, topology.positions_ecef_km, at)

    return {
        "satellites": topology.satellite_count,
        "scalar_s": scalar_s,
        "batch_s": batch_s,
        "speedup": scalar_s / batch_s,
        "max_diff_km": float(np.max(np.abs(batch_positions - scalar_positions))),
    }


def test_batch_propagation_speedup(benchmark, once):
    stats = once(benchmark, _run_comparison)

    print(
        f"\n{stats['satellites']} satellites: scalar {stats['scalar_s']*1e3:.2f} ms, "
        f"batch {stats['batch_s']*1e3:.2f} ms -> {stats['speedup']:.1f}x "
        f"(max diff {stats['max_diff_km']:.2e} km)"
    )

    assert stats["satellites"] >= 300
    assert stats["max_diff_km"] < AGREEMENT_KM
    assert stats["speedup"] >= SPEEDUP_FLOOR
