"""Benchmark: array-native ``csgraph`` routing backend vs the ``networkx`` reference.

PR 2 made snapshot-graph construction cached and incremental, which left the
per-step shortest-path searches over ``networkx`` adjacency dicts as the
dominant cost of every sweep.  The ``csgraph`` backend routes on the
snapshot sequence's CSR edge arrays instead: one compiled multi-source
:func:`scipy.sparse.csgraph.dijkstra` call covers every ground station of a
step, and paths are reconstructed lazily from the predecessor matrix.

This benchmark times the **per-step routing stage** -- snapshot-view
production (incrementally updated graph vs CSR export) plus the batched
all-stations route-table computation -- over a 24-hour, 360-satellite
sequence for both backends, asserts the latency tables agree, and asserts
the ``csgraph`` backend clears the speedup floor (>= 3x at full size).  A
whole-pipeline ``run_scenarios`` sweep is also timed both ways for context.

Run ``pytest benchmarks/bench_routing_backends.py`` (add ``--smoke`` for the
small CI configuration, ``--benchmark-json=BENCH_routing_backends.json`` to
record the result).
"""

from __future__ import annotations

import time

import numpy as np

from repro.coverage.walker import WalkerDelta
from repro.demand.traffic_matrix import City, GravityTrafficModel
from repro.network.ground_station import GroundStation
from repro.network.routing import SnapshotRouter
from repro.network.simulation import NetworkSimulator, Scenario
from repro.network.topology import ConstellationTopology
from repro.orbits.time import Epoch, epoch_range

CITIES = (
    City("London", 51.5, -0.1, 9.6),
    City("New York", 40.7, -74.0, 20.0),
    City("Tokyo", 35.7, 139.7, 37.0),
    City("Sao Paulo", -23.6, -46.6, 22.0),
    City("Delhi", 28.6, 77.2, 32.0),
    City("Lagos", 6.5, 3.4, 15.0),
)

SCENARIOS = [
    Scenario(name="baseline"),
    Scenario(name="peak_demand", demand_multiplier=2.0),
    Scenario(name="max_min", allocator="max_min"),
    Scenario(name="flow_budget", flows_per_step=8),
]


def _walker_topology(epoch: Epoch, satellites: int, planes: int) -> ConstellationTopology:
    wd = WalkerDelta(
        altitude_km=560.0,
        inclination_deg=65.0,
        total_satellites=satellites,
        planes=planes,
        phasing=1,
    )
    elements = wd.satellite_elements()
    per_plane = wd.satellites_per_plane
    return ConstellationTopology(
        planes=[elements[i * per_plane : (i + 1) * per_plane] for i in range(wd.planes)],
        epoch=epoch,
    )


def _station_pair_latencies(tables, sources) -> list[float]:
    """Flatten every station-to-station latency of one step, fixed order."""
    latencies = []
    for source in sources:
        table = tables[source]
        for destination in sources:
            if destination == source:
                continue
            route = table.get(destination)
            latencies.append(route.latency_ms if route is not None else float("inf"))
    return latencies


def _run_comparison(smoke: bool):
    epoch = Epoch.from_calendar(2025, 3, 20, 12, 0, 0.0)
    satellites, planes = (120, 8) if smoke else (360, 18)
    duration_hours = 6.0 if smoke else 24.0
    topology = _walker_topology(epoch, satellites, planes)
    stations = [GroundStation(c.name, c.latitude_deg, c.longitude_deg) for c in CITIES]
    epochs = epoch_range(epoch, duration_hours * 3600.0, 3600.0)
    sequence = topology.snapshot_sequence(epochs, stations)
    sources = [f"gs:{station.name}" for station in stations]

    # Warm both code paths (numpy dispatch, networkx decorators, scipy import).
    warm_graph = next(sequence.graphs(copy=True))
    SnapshotRouter(warm_graph).routes_from_many(sources)
    SnapshotRouter(backend="csgraph", arrays=sequence.edge_arrays(0)).routes_from_many(
        sources
    )

    # Per-step routing stage, networkx: incrementally updated graph stream
    # plus one single-source Dijkstra per station per step.
    begin = time.perf_counter()
    networkx_latencies = []
    for graph in sequence.graphs(copy=False):
        tables = SnapshotRouter(graph).routes_from_many(sources)
        networkx_latencies.extend(_station_pair_latencies(tables, sources))
    networkx_s = time.perf_counter() - begin

    # Per-step routing stage, csgraph: CSR export plus one compiled
    # multi-source Dijkstra per step, lazy path reconstruction.
    begin = time.perf_counter()
    csgraph_latencies = []
    for step in range(len(sequence)):
        router = SnapshotRouter(backend="csgraph", arrays=sequence.edge_arrays(step))
        tables = router.routes_from_many(sources)
        csgraph_latencies.extend(_station_pair_latencies(tables, sources))
    csgraph_s = time.perf_counter() - begin

    reference = np.array(networkx_latencies)
    candidate = np.array(csgraph_latencies)
    reachable = np.isfinite(reference)
    equivalent = bool(
        np.array_equal(reachable, np.isfinite(candidate))
        and np.allclose(reference[reachable], candidate[reachable], atol=1e-9)
    )

    # Whole-pipeline context: the same 4-scenario sweep through each backend.
    model = GravityTrafficModel(cities=CITIES, total_demand=60.0)
    simulator = NetworkSimulator(
        topology=topology, ground_stations=stations, traffic_model=model, flows_per_step=12
    )
    simulator.run_scenarios(SCENARIOS, epoch, duration_hours=1.0)  # warm
    begin = time.perf_counter()
    networkx_sweep = simulator.run_scenarios(SCENARIOS, epoch, duration_hours)
    sweep_networkx_s = time.perf_counter() - begin
    begin = time.perf_counter()
    csgraph_sweep = simulator.run_scenarios(
        SCENARIOS, epoch, duration_hours, backend="csgraph"
    )
    sweep_csgraph_s = time.perf_counter() - begin
    sweep_equivalent = all(
        np.allclose(
            [step.delivery_ratio for step in networkx_sweep[name].steps],
            [step.delivery_ratio for step in csgraph_sweep[name].steps],
            atol=1e-9,
        )
        for name in networkx_sweep
    )

    return {
        "satellites": satellites,
        "steps": len(epochs),
        "station_pairs": len(sources) * (len(sources) - 1),
        "networkx_s": networkx_s,
        "csgraph_s": csgraph_s,
        "routing_speedup": networkx_s / csgraph_s,
        "equivalent": equivalent,
        "sweep_networkx_s": sweep_networkx_s,
        "sweep_csgraph_s": sweep_csgraph_s,
        "sweep_speedup": sweep_networkx_s / sweep_csgraph_s,
        "sweep_equivalent": sweep_equivalent,
    }


def test_routing_backend_speedup(benchmark, once, smoke):
    routing_floor = 1.5 if smoke else 3.0

    stats = once(benchmark, _run_comparison, smoke)
    benchmark.extra_info.update(
        {
            key: stats[key]
            for key in (
                "satellites",
                "steps",
                "station_pairs",
                "networkx_s",
                "csgraph_s",
                "routing_speedup",
                "sweep_speedup",
                "equivalent",
                "sweep_equivalent",
            )
        }
    )

    print(
        f"\n{stats['satellites']} satellites, {stats['steps']} steps, "
        f"{stats['station_pairs']} station pairs per step:"
    )
    print(
        f"  routing stage: networkx {stats['networkx_s']*1e3:.0f} ms vs "
        f"csgraph {stats['csgraph_s']*1e3:.0f} ms "
        f"-> {stats['routing_speedup']:.1f}x"
    )
    print(
        f"  4-scenario sweep: networkx {stats['sweep_networkx_s']:.2f} s vs "
        f"csgraph {stats['sweep_csgraph_s']:.2f} s "
        f"-> {stats['sweep_speedup']:.2f}x"
    )

    assert stats["equivalent"], "backends must agree on every station-pair latency"
    assert stats["sweep_equivalent"], "backends must agree on sweep delivery ratios"
    assert stats["routing_speedup"] >= routing_floor
