"""Figure 10: median per-satellite radiation of the designed constellations."""

from __future__ import annotations

import numpy as np

from repro.analysis.figures import figure09_figure10_sweep
from repro.analysis.report import format_table

MULTIPLIERS = (3.0, 10.0, 30.0, 100.0)


def test_fig10_median_radiation(benchmark, once):
    data = once(benchmark, figure09_figure10_sweep, bandwidth_multipliers=MULTIPLIERS)

    rows = [
        [
            float(m),
            float(sse),
            float(wde),
            float(ssp),
            float(wdp),
        ]
        for m, sse, wde, ssp, wdp in zip(
            data["bandwidth_multiplier"],
            data["ss_median_electron"],
            data["walker_median_electron"],
            data["ss_median_proton"],
            data["walker_median_proton"],
        )
    ]
    print("\nFigure 10: median per-satellite daily fluence")
    print(format_table(["multiplier", "SS e-", "WD e-", "SS p+", "WD p+"], rows))

    ss_e = data["ss_median_electron"]
    wd_e = data["walker_median_electron"]
    ss_p = data["ss_median_proton"]
    wd_p = data["walker_median_proton"]

    # Paper shape: the SS median is flat (all planes share one inclination)
    # and sits below the Walker median for both species at every multiplier.
    assert np.allclose(ss_e, ss_e[0], rtol=1e-2)
    assert np.allclose(ss_p, ss_p[0], rtol=1e-2)
    assert np.all(ss_e < wd_e)
    assert np.all(ss_p < wd_p)
    # Magnitudes match the paper's axes (electrons ~7-9e9, protons ~1e7).
    assert 5e9 < ss_e[0] < 1e10
    assert 5e6 < ss_p[0] < 5e7
