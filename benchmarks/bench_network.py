"""Extension benchmark: network-layer behaviour over an SS-plane constellation.

Not a figure of the paper, but the Section 5 implications ask what routing and
traffic engineering look like over SS-plane constellations; this benchmark
runs a scenario sweep (baseline vs max-min allocation vs doubled demand) over
a designed SS constellation through the shared snapshot-sequence engine and
reports per-scenario delivery ratio and latency.
"""

from __future__ import annotations

from repro.core.designer import ConstellationDesigner
from repro.core.metrics import MetricsCalculator
from repro.demand.population import synthetic_population_grid
from repro.demand.spatiotemporal import SpatiotemporalDemandModel
from repro.demand.traffic_matrix import City, GravityTrafficModel
from repro.network.ground_station import GroundStation
from repro.network.simulation import NetworkSimulator, Scenario
from repro.network.topology import ConstellationTopology
from repro.orbits.time import Epoch
from repro.radiation.exposure import ExposureCalculator

SCENARIOS = [
    Scenario(name="baseline"),
    Scenario(name="max_min", allocator="max_min"),
    Scenario(name="peak_demand", demand_multiplier=2.0),
]


def _run_simulation():
    designer = ConstellationDesigner(
        demand_model=SpatiotemporalDemandModel(
            population=synthetic_population_grid(resolution_deg=2.0)
        ),
        lat_resolution_deg=4.0,
        time_resolution_hours=2.0,
        metrics_calculator=MetricsCalculator(exposure=ExposureCalculator(step_s=300.0)),
    )
    outcome = designer.design_ssplane(3.0)
    planes = [plane.satellite_elements() for plane in outcome.result.planes]
    epoch = Epoch.from_calendar(2025, 3, 20, 12, 0, 0.0)
    topology = ConstellationTopology(planes=planes, epoch=epoch)

    cities = (
        City("London", 51.5, -0.1, 9.6),
        City("New York", 40.7, -74.0, 20.0),
        City("Tokyo", 35.7, 139.7, 37.0),
        City("Delhi", 28.6, 77.2, 32.0),
        City("Sao Paulo", -23.6, -46.6, 22.0),
        City("Lagos", 6.5, 3.4, 15.0),
    )
    stations = [GroundStation(c.name, c.latitude_deg, c.longitude_deg) for c in cities]
    simulator = NetworkSimulator(
        topology=topology,
        ground_stations=stations,
        traffic_model=GravityTrafficModel(cities=cities, total_demand=60.0),
        flows_per_step=20,
    )
    sweep = simulator.run_scenarios(SCENARIOS, epoch, duration_hours=4.0, step_hours=2.0)
    return outcome, sweep


def test_network_over_ss_constellation(benchmark, once):
    outcome, sweep = once(benchmark, _run_simulation)

    print(
        f"\nSS constellation: {outcome.total_satellites} satellites in "
        f"{outcome.metrics.plane_count} planes"
    )
    for name, result in sweep.items():
        print(f"  scenario {name}:")
        for step in result.steps:
            print(
                f"    t={step.utc_hour:05.2f}h offered={step.offered_gbps:.1f} "
                f"delivered={step.delivered_gbps:.1f} reach={step.reachable_fraction:.2f} "
                f"latency={step.mean_latency_ms:.1f}ms"
            )

    assert outcome.total_satellites > 0
    assert list(sweep) == [scenario.name for scenario in SCENARIOS]
    for result in sweep.values():
        assert len(result.steps) == 2
        assert result.mean_delivery_ratio() > 0.0
    baseline, peak = sweep["baseline"], sweep["peak_demand"]
    for light, heavy in zip(baseline.steps, peak.steps):
        assert heavy.offered_gbps > light.offered_gbps
