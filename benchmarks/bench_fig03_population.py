"""Figure 3: maximum population density per latitude band."""

from __future__ import annotations

import numpy as np

from repro.analysis.figures import figure03_population_by_latitude
from repro.analysis.report import format_series


def test_fig03_population_by_latitude(benchmark, once):
    data = once(benchmark, figure03_population_by_latitude)

    lats = data["latitude_deg"]
    density = data["max_density_per_km2"]
    step = max(1, len(lats) // 24)
    print("\nFigure 3:")
    print(
        format_series(
            "Max population density per latitude", lats[::step], density[::step],
            "latitude_deg", "people_per_km2",
        )
    )

    # Paper shape: peak of a few thousand per km^2 at intermediate Northern
    # latitudes, essentially nothing poleward of 75 degrees.
    peak_latitude = lats[int(np.argmax(density))]
    assert 15.0 <= peak_latitude <= 45.0
    assert 2000.0 <= density.max() <= 15000.0
    assert density[np.abs(lats) > 80.0].max() == 0.0
