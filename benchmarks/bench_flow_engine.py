"""Benchmark: columnar flow engine vs the per-object reference pipeline.

PR 7 replaces the per-flow Python path -- tuple selection, lazy per-pair
path reconstruction, ``Flow`` dataclasses, per-flow incidence compilation
-- with the columnar engine (:mod:`repro.network.flows`): selection by
``argpartition`` over the traffic matrix's entry arrays, routing fan-out as
one bulk predecessor walk per source, and allocation compiled straight
into the sparse (flow x link) system without materialising a single Python
object per flow.

This benchmark times stages 2-5 of the step pipeline
(``_evaluate_scenario_step``: select + route fan-out + allocate + sketch
telemetry) over an identical synthetic station set -- ~10^5 station pairs
at full size, the regime the Section 5 implications target -- for both
engines, asserts the step statistics are **exactly** equal (the engines
are bit-equivalent by construction, no tolerance), and asserts the
columnar engine clears the speedup floor (>= 10x at full size).  The
sketch telemetry memory is recorded to show it stays fixed while the flow
count scales.

Run ``pytest benchmarks/bench_flow_engine.py`` (add ``--smoke`` for the
small CI configuration, ``--benchmark-json=BENCH_flow_engine.json`` to
record the result).
"""

from __future__ import annotations

import time

import numpy as np

from repro.coverage.walker import WalkerDelta
from repro.demand.traffic_matrix import City, GravityTrafficModel
from repro.obs import Tracer
from repro.network.routing import SnapshotRouter
from repro.network.ground_station import GroundStation
from repro.network.simulation import (
    NetworkSimulator,
    Scenario,
    _EdgeListCapacityView,
)
from repro.network.topology import ConstellationTopology
from repro.orbits.time import Epoch


def _synthetic_cities(count: int, seed: int = 0) -> tuple[City, ...]:
    """A deterministic world-spanning station set of ``count`` endpoints.

    Latitudes stay within +/-55 degrees so a 65-degree-inclination shell
    keeps every station under coverage; weights are drawn from a seeded
    stream so the gravity matrix has a realistic heavy tail.
    """
    rng = np.random.default_rng(seed)
    golden = (1.0 + 5.0**0.5) / 2.0
    index = np.arange(count)
    latitudes = -55.0 + 110.0 * ((index * golden) % 1.0)
    longitudes = -180.0 + 360.0 * ((index * golden * golden) % 1.0)
    weights = rng.pareto(1.5, size=count) + 1.0
    return tuple(
        City(f"S{i:03d}", float(latitudes[i]), float(longitudes[i]), float(weights[i]))
        for i in range(count)
    )


def _walker_topology(epoch: Epoch, satellites: int, planes: int) -> ConstellationTopology:
    wd = WalkerDelta(
        altitude_km=560.0,
        inclination_deg=65.0,
        total_satellites=satellites,
        planes=planes,
        phasing=1,
    )
    elements = wd.satellite_elements()
    per_plane = wd.satellites_per_plane
    return ConstellationTopology(
        planes=[elements[i * per_plane : (i + 1) * per_plane] for i in range(wd.planes)],
        epoch=epoch,
    )


def _run_comparison(smoke: bool):
    epoch = Epoch.from_calendar(2025, 3, 20, 12, 0, 0.0)
    satellites, planes = (120, 8) if smoke else (360, 18)
    station_count = 80 if smoke else 335
    flows_per_step = 5_000 if smoke else 100_000
    cities = _synthetic_cities(station_count)
    stations = [GroundStation(c.name, c.latitude_deg, c.longitude_deg) for c in cities]
    names = tuple(city.name for city in cities)
    model = GravityTrafficModel(cities=cities, total_demand=4000.0)
    topology = _walker_topology(epoch, satellites, planes)

    # One snapshot is enough: the engines differ only inside stages 2-5,
    # which see a fixed (matrix, router, capacity view) triple per step.
    sequence = topology.snapshot_sequence([epoch], stations)
    edge_list = sequence.edge_list(0)
    router = SnapshotRouter(backend="csgraph", arrays=edge_list.arrays())
    view = _EdgeListCapacityView(edge_list)
    matrix = model.matrix_at(12.0)
    scenario = Scenario(
        name="flows", allocator="proportional_array", telemetry="sketch"
    )

    def evaluate(engine: str):
        return NetworkSimulator._evaluate_scenario_step(
            router,
            view,
            matrix,
            scenario,
            names,
            flows_per_step,
            utc_hour=12.0,
            flow_engine=engine,
        )

    # Warm both engines at a tiny budget (imports, numpy dispatch, lazy
    # registry resolution) before taking any timestamps.
    for engine in ("objects", "columnar"):
        NetworkSimulator._evaluate_scenario_step(
            router, view, matrix, scenario, names, 50, 12.0, flow_engine=engine
        )

    # The smoke problem is tiny; repeating the (deterministic) stage keeps
    # the ratio out of timer noise without changing what is measured.
    repetitions = 5 if smoke else 1
    begin = time.perf_counter()
    for _ in range(repetitions):
        object_stats, object_telemetry, _ = evaluate("objects")
    objects_s = (time.perf_counter() - begin) / repetitions
    begin = time.perf_counter()
    for _ in range(repetitions):
        columnar_stats, columnar_telemetry, _ = evaluate("columnar")
    columnar_s = (time.perf_counter() - begin) / repetitions

    # One traced columnar pass attributes the step to pipeline stages; the
    # spans never touch pipeline values, so the statistics stay identical
    # to the untraced passes timed above.
    tracer = Tracer()
    traced_stats, _, _ = NetworkSimulator._evaluate_scenario_step(
        router,
        view,
        matrix,
        scenario,
        names,
        flows_per_step,
        utc_hour=12.0,
        flow_engine="columnar",
        tracer=tracer,
    )

    return {
        "stage_breakdown": tracer.metrics.stage_summary(),
        "traced_equivalent": traced_stats == columnar_stats,
        "satellites": satellites,
        "stations": station_count,
        "station_pairs": station_count * (station_count - 1),
        "flows_per_step": flows_per_step,
        "objects_s": objects_s,
        "columnar_s": columnar_s,
        "speedup": objects_s / columnar_s,
        "equivalent": object_stats == columnar_stats,
        "telemetry_equivalent": (
            object_telemetry.top_pairs(5) == columnar_telemetry.top_pairs(5)
            and object_telemetry.total_gbps() == columnar_telemetry.total_gbps()
        ),
        "sketch_bytes": columnar_telemetry.store.memory_bytes(),
        "offered_gbps": object_stats.offered_gbps,
        "delivered_gbps": object_stats.delivered_gbps,
    }


def test_flow_engine_speedup(benchmark, once, smoke):
    speedup_floor = 2.0 if smoke else 10.0

    stats = once(benchmark, _run_comparison, smoke)
    benchmark.extra_info.update(stats)

    print(
        f"\n{stats['stations']} stations ({stats['station_pairs']} pairs), "
        f"{stats['flows_per_step']} flows per step, {stats['satellites']} satellites:"
    )
    print(
        f"  stages 2-5: objects {stats['objects_s']*1e3:.0f} ms vs "
        f"columnar {stats['columnar_s']*1e3:.0f} ms "
        f"-> {stats['speedup']:.1f}x"
    )
    print(
        f"  sketch telemetry: {stats['sketch_bytes']/1024:.0f} KiB fixed "
        f"(vs O(pairs) exact)"
    )
    for stage, row in stats["stage_breakdown"].items():
        print(
            f"  {stage:<14} {row['seconds']*1e3:8.1f} ms  ({row['share']:.0%})"
        )

    assert stats["equivalent"], "engines must produce identical step statistics"
    assert stats["telemetry_equivalent"], "engines must produce identical telemetry"
    assert stats["traced_equivalent"], "tracing must not perturb statistics"
    assert stats["speedup"] >= speedup_floor
