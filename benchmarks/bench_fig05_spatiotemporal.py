"""Figure 5: Earth-fixed spatiotemporal demand snapshots through the day."""

from __future__ import annotations

import numpy as np

from repro.analysis.figures import figure05_demand_snapshots
from repro.analysis.report import format_grid_summary


def test_fig05_demand_snapshots(benchmark, once):
    data = once(benchmark, figure05_demand_snapshots, population_resolution_deg=2.0)

    print("\nFigure 5: demand snapshots")
    totals = {}
    for hour in data["hours"]:
        snapshot = data["snapshots"][float(hour)]
        totals[float(hour)] = float(snapshot["demand"].sum())
        print(format_grid_summary(f"hour {hour:04.1f} UTC", snapshot["demand"]))

    # The total instantaneous demand varies through the day as population
    # centres rotate through their evening peaks (the "louder"/"quieter"
    # regions of the paper's Figure 5).
    assert max(totals.values()) > 1.1 * min(totals.values())
    # Every snapshot keeps the same spatial support (no demand appears over
    # the oceans at any hour).
    for hour in data["hours"]:
        snapshot = data["snapshots"][float(hour)]
        lats = snapshot["latitude_deg"]
        assert snapshot["demand"][np.abs(lats) > 80.0, :].max() == 0.0
