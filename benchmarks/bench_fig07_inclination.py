"""Figure 7: daily radiation fluence as a function of orbital inclination."""

from __future__ import annotations

import numpy as np

from repro.analysis.figures import figure07_fluence_vs_inclination
from repro.analysis.report import format_table
from repro.orbits.sunsync import sun_synchronous_inclination_deg


def test_fig07_fluence_vs_inclination(benchmark, once):
    inclinations = np.arange(45.0, 101.0, 2.5)
    data = once(benchmark, figure07_fluence_vs_inclination, inclinations_deg=inclinations)

    rows = [
        [float(i), float(e), float(p)]
        for i, e, p in zip(
            data["inclination_deg"], data["electron_fluence"], data["proton_fluence"]
        )
    ]
    print("\nFigure 7: daily fluence vs inclination (560 km)")
    print(format_table(["inclination", "electrons", "protons"], rows))

    electron = data["electron_fluence"]
    proton = data["proton_fluence"]
    inc = data["inclination_deg"]

    # Paper shape: electrons peak for moderate inclinations (the orbits that
    # linger in the outer-belt horns) and drop for sun-synchronous
    # inclinations; protons decrease monotonically towards high inclinations.
    peak_inclination = inc[int(np.argmax(electron))]
    assert 55.0 <= peak_inclination <= 75.0
    ss_index = int(np.argmin(np.abs(inc - sun_synchronous_inclination_deg(560.0))))
    assert electron[ss_index] < electron.max() * 0.9
    assert proton[0] > proton[ss_index]
    # Magnitudes match the paper's axes: electrons in the 1e9-1e10 range,
    # protons in the 1e7 range.
    assert 2e9 < electron.min() and electron.max() < 3e10
    assert 5e6 < proton.min() and proton.max() < 1e8
