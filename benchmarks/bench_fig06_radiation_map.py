"""Figure 6: maximum electron flux map at 560 km over a solar-cycle sample."""

from __future__ import annotations

import numpy as np

from repro.analysis.figures import figure06_radiation_map
from repro.analysis.report import format_grid_summary


def test_fig06_radiation_map(benchmark, once):
    data = once(benchmark, figure06_radiation_map, resolution_deg=2.0, n_days=128)

    values = data["electron_flux"]
    lats = data["latitude_deg"]
    lons = data["longitude_deg"]
    row, col = np.unravel_index(int(np.argmax(values)), values.shape)
    print("\nFigure 6:")
    print(format_grid_summary("electron flux at 560 km", values))
    print(f"maximum at latitude {lats[row]:.1f}, longitude {lons[col]:.1f}")

    # Paper structure: (i) the hot region sits in the South-America /
    # South-Atlantic sector, (ii) distinct high-latitude bands exist in both
    # hemispheres, (iii) the mid-Pacific at low latitude is comparatively quiet.
    assert -90.0 <= lons[col] <= 30.0
    band_max = values.max(axis=1)
    north_horn = band_max[(lats > 50.0) & (lats < 72.0)].max()
    south_horn = band_max[(lats < -50.0) & (lats > -72.0)].max()
    equator_pacific = values[np.abs(lats) < 15.0][:, (lons > 150.0) | (lons < -150.0)].max()
    assert north_horn > 2.0 * equator_pacific
    assert south_horn > 2.0 * equator_pacific
