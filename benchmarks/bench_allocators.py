"""Benchmark: array-native capacity allocators vs the dict references.

PR 3/4 made routing and fault masking array-native, which left stage 4 --
capacity allocation over per-flow python dicts -- as the dominant
pure-python cost of congested sweeps.  The ``"*_array"`` allocators
(:mod:`repro.network.alloc_arrays`) compile each step's routed flows into a
sparse (flow x link) incidence system straight from the csgraph backend's
row-index paths and run the same progressive-filling fixed point as numpy
mask/`bincount` operations.

This benchmark times the **per-step allocation stage** -- allocator calls
over identical flow sets routed once with the ``csgraph`` backend -- for
the dict and array implementations of both policies over a congested
24-hour, 360-satellite scenario (demand far above capacity, so max-min
runs deep freeze cascades), asserts the allocations agree within 1e-9, and
asserts the array max-min clears the speedup floor (>= 3x at full size).
A whole-pipeline ``run_scenarios`` sweep is also timed both ways for
context.

Run ``pytest benchmarks/bench_allocators.py`` (add ``--smoke`` for the
small CI configuration, ``--benchmark-json=BENCH_allocators.json`` to
record the result).
"""

from __future__ import annotations

import time

import numpy as np

from repro.coverage.walker import WalkerDelta
from repro.demand.traffic_matrix import City, GravityTrafficModel
from repro.network.capacity import get_allocator
from repro.network.routing import SnapshotRouter
from repro.network.ground_station import GroundStation
from repro.network.simulation import (
    NetworkSimulator,
    Scenario,
    _EdgeListCapacityView,
)
from repro.network.topology import ConstellationTopology
from repro.orbits.time import Epoch, epoch_range

CITIES = (
    City("London", 51.5, -0.1, 9.6),
    City("New York", 40.7, -74.0, 20.0),
    City("Tokyo", 35.7, 139.7, 37.0),
    City("Sao Paulo", -23.6, -46.6, 22.0),
    City("Delhi", 28.6, 77.2, 32.0),
    City("Lagos", 6.5, 3.4, 15.0),
    City("Sydney", -33.9, 151.2, 5.3),
    City("Johannesburg", -26.2, 28.0, 6.0),
    City("Frankfurt", 50.1, 8.7, 5.6),
    City("Singapore", 1.35, 103.8, 5.9),
    City("Los Angeles", 34.1, -118.2, 12.5),
    City("Santiago", -33.4, -70.7, 6.2),
)


def _walker_topology(epoch: Epoch, satellites: int, planes: int) -> ConstellationTopology:
    wd = WalkerDelta(
        altitude_km=560.0,
        inclination_deg=65.0,
        total_satellites=satellites,
        planes=planes,
        phasing=1,
    )
    elements = wd.satellite_elements()
    per_plane = wd.satellites_per_plane
    return ConstellationTopology(
        planes=[elements[i * per_plane : (i + 1) * per_plane] for i in range(wd.planes)],
        epoch=epoch,
    )


def _allocations_close(reference, candidate, tolerance: float = 1e-9) -> bool:
    if set(reference.allocated_gbps) != set(candidate.allocated_gbps):
        return False
    return all(
        abs(candidate.allocated_gbps[name] - rate) <= tolerance
        for name, rate in reference.allocated_gbps.items()
    )


def _run_comparison(smoke: bool):
    epoch = Epoch.from_calendar(2025, 3, 20, 12, 0, 0.0)
    satellites, planes = (120, 8) if smoke else (360, 18)
    duration_hours = 6.0 if smoke else 24.0
    flows_per_step = 60 if smoke else 120
    topology = _walker_topology(epoch, satellites, planes)
    stations = [GroundStation(c.name, c.latitude_deg, c.longitude_deg) for c in CITIES]
    # Demand far above link capacity: every step runs a deep progressive
    # filling with long freeze cascades -- the congested regime the array
    # formulation exists for.
    model = GravityTrafficModel(cities=CITIES, total_demand=4000.0)
    epochs = epoch_range(epoch, duration_hours * 3600.0, 3600.0)
    sequence = topology.snapshot_sequence(epochs, stations)

    # Stage inputs: per-step flows routed once over the csgraph backend
    # (row-index paths), plus the graph / capacity-view pair every
    # allocator implementation reads its capacities from.
    matrix = model.matrix_at(12.0)
    candidates = NetworkSimulator._select_flows(
        matrix,
        tuple(station.name for station in stations),
        flows_per_step,
        demand_multiplier=1.0,
    )
    step_flows = []
    step_views = []
    for step in range(len(sequence)):
        edge_list = sequence.edge_list(step)
        router = SnapshotRouter(backend="csgraph", arrays=edge_list.arrays())
        flows = NetworkSimulator._route_flows(router, candidates).flows
        step_flows.append(flows)
        step_views.append(_EdgeListCapacityView(edge_list))
    step_graphs = list(sequence.graphs(copy=True))

    policies = ("proportional", "max_min")
    # The smoke problem finishes in single-digit milliseconds; repeating
    # the (deterministic) stage keeps the measured ratio out of timer
    # noise without changing what is measured.
    repetitions = 5 if smoke else 1
    stage_seconds: dict[str, float] = {}
    equivalent = True
    for policy in policies:
        reference_allocator = get_allocator(policy)
        array_allocator = get_allocator(f"{policy}_array")
        # Warm both implementations (numpy dispatch, registry imports).
        reference_allocator(step_graphs[0], step_flows[0])
        array_allocator(step_views[0], step_flows[0])

        begin = time.perf_counter()
        for _ in range(repetitions):
            reference_results = [
                reference_allocator(graph, flows)
                for graph, flows in zip(step_graphs, step_flows)
            ]
        stage_seconds[policy] = (time.perf_counter() - begin) / repetitions

        begin = time.perf_counter()
        for _ in range(repetitions):
            array_results = [
                array_allocator(view, flows)
                for view, flows in zip(step_views, step_flows)
            ]
        stage_seconds[f"{policy}_array"] = (time.perf_counter() - begin) / repetitions

        equivalent = equivalent and all(
            _allocations_close(reference, candidate)
            for reference, candidate in zip(reference_results, array_results)
        )

    # Whole-pipeline context: the same congested sweep through the dict and
    # array max-min policies (csgraph routing both ways).
    simulator = NetworkSimulator(
        topology=topology,
        ground_stations=stations,
        traffic_model=model,
        flows_per_step=flows_per_step,
    )
    simulator.run_scenarios(
        [Scenario(name="warm", allocator="max_min_array")],
        epoch,
        duration_hours=1.0,
        backend="csgraph",
    )
    begin = time.perf_counter()
    dict_sweep = simulator.run_scenarios(
        [Scenario(name="mm", allocator="max_min")],
        epoch,
        duration_hours,
        backend="csgraph",
    )
    sweep_dict_s = time.perf_counter() - begin
    begin = time.perf_counter()
    array_sweep = simulator.run_scenarios(
        [Scenario(name="mm", allocator="max_min_array")],
        epoch,
        duration_hours,
        backend="csgraph",
    )
    sweep_array_s = time.perf_counter() - begin
    sweep_equivalent = bool(
        np.allclose(
            [step.delivered_gbps for step in dict_sweep["mm"].steps],
            [step.delivered_gbps for step in array_sweep["mm"].steps],
            atol=1e-9,
        )
    )

    return {
        "satellites": satellites,
        "steps": len(epochs),
        "flows_per_step": flows_per_step,
        "proportional_s": stage_seconds["proportional"],
        "proportional_array_s": stage_seconds["proportional_array"],
        "proportional_speedup": (
            stage_seconds["proportional"] / stage_seconds["proportional_array"]
        ),
        "max_min_s": stage_seconds["max_min"],
        "max_min_array_s": stage_seconds["max_min_array"],
        "max_min_speedup": stage_seconds["max_min"] / stage_seconds["max_min_array"],
        "equivalent": equivalent,
        "sweep_dict_s": sweep_dict_s,
        "sweep_array_s": sweep_array_s,
        "sweep_speedup": sweep_dict_s / sweep_array_s,
        "sweep_equivalent": sweep_equivalent,
    }


def test_allocator_speedup(benchmark, once, smoke):
    allocation_floor = 1.3 if smoke else 3.0

    stats = once(benchmark, _run_comparison, smoke)
    benchmark.extra_info.update(
        {
            key: stats[key]
            for key in (
                "satellites",
                "steps",
                "flows_per_step",
                "proportional_s",
                "proportional_array_s",
                "proportional_speedup",
                "max_min_s",
                "max_min_array_s",
                "max_min_speedup",
                "sweep_speedup",
                "equivalent",
                "sweep_equivalent",
            )
        }
    )

    print(
        f"\n{stats['satellites']} satellites, {stats['steps']} steps, "
        f"{stats['flows_per_step']} congested flows per step:"
    )
    print(
        f"  max-min stage: dict {stats['max_min_s']*1e3:.0f} ms vs "
        f"array {stats['max_min_array_s']*1e3:.0f} ms "
        f"-> {stats['max_min_speedup']:.1f}x"
    )
    print(
        f"  proportional stage: dict {stats['proportional_s']*1e3:.0f} ms vs "
        f"array {stats['proportional_array_s']*1e3:.0f} ms "
        f"-> {stats['proportional_speedup']:.1f}x"
    )
    print(
        f"  1-scenario congested sweep: dict {stats['sweep_dict_s']:.2f} s vs "
        f"array {stats['sweep_array_s']:.2f} s "
        f"-> {stats['sweep_speedup']:.2f}x"
    )

    assert stats["equivalent"], "allocators must agree on every step's rates"
    assert stats["sweep_equivalent"], "sweeps must agree on delivered traffic"
    assert stats["max_min_speedup"] >= allocation_floor
