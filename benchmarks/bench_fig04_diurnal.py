"""Figure 4: bandwidth demand as a function of local time of day."""

from __future__ import annotations

import numpy as np

from repro.analysis.figures import figure04_diurnal_percentiles
from repro.analysis.report import format_table


def test_fig04_diurnal_percentiles(benchmark, once):
    data = once(benchmark, figure04_diurnal_percentiles, n_days=14)

    rows = [
        [float(h), round(float(p50), 1), round(float(p95), 1)]
        for h, p50, p95 in zip(
            data["hour_of_day"],
            data["percent_of_median_p50"],
            data["percent_of_median_p95"],
        )
    ]
    print("\nFigure 4: demand vs local time of day (% of site median)")
    print(format_table(["hour", "p50", "p95"], rows))

    p50 = data["percent_of_median_p50"]
    p95 = data["percent_of_median_p95"]
    # Paper shape: clear diurnal cycle (evening peak well above the
    # early-morning trough) and a heavily right-skewed cross-site spread.
    trough_hour = data["hour_of_day"][int(np.argmin(p50))]
    peak_hour = data["hour_of_day"][int(np.argmax(p50))]
    assert 1.0 <= trough_hour <= 7.0
    assert 17.0 <= peak_hour <= 23.0
    assert p50.max() > 1.8 * p50.min()
    assert np.all(p95 >= p50)
    assert p95.max() > 3.0 * p50.max()
