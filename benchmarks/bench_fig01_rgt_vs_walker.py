"""Figure 1: satellites required to cover one RGT vs. a Walker-delta minimum."""

from __future__ import annotations

from repro.analysis.figures import figure01_rgt_vs_walker
from repro.analysis.report import format_table


def test_fig01_rgt_vs_walker(benchmark, once):
    data = once(benchmark, figure01_rgt_vs_walker)

    rows = [
        [round(float(alt), 1), int(revs), int(rgt), int(walker), bool(uniform)]
        for alt, revs, rgt, walker, uniform in zip(
            data["altitude_km"],
            data["revolutions_per_day"],
            data["rgt_satellites"],
            data["walker_satellites"],
            data["uniform_coverage"],
        )
    ]
    print("\nFigure 1: RGT vs Walker satellite counts")
    print(format_table(["altitude_km", "revs/day", "RGT", "Walker", "uniform"], rows))

    # Paper shape: covering a single RGT never beats the Walker baseline, and
    # only the lowest-altitude LEO RGTs avoid degenerating to uniform coverage.
    assert all(
        rgt >= walker
        for rgt, walker in zip(data["rgt_satellites"], data["walker_satellites"])
    )
    assert data["uniform_coverage"].sum() >= len(rows) - 2
    assert not data["uniform_coverage"][0]
