"""Ablation: how the SS-vs-Walker gap depends on design-model choices.

DESIGN.md calls out two modelling knobs that the paper leaves unspecified and
that move the headline satellite-reduction factor: the street width an
SS-plane is credited with (which also sets its per-plane satellite count), and
the resolution of the demand grid.  This benchmark sweeps both and prints the
resulting reduction factors, so the sensitivity is part of the recorded
reproduction output.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.core.designer import ConstellationDesigner
from repro.core.greedy_cover import GreedySSPlaneDesigner
from repro.core.metrics import MetricsCalculator
from repro.core.walker_baseline import DemandDrivenWalkerDesigner
from repro.demand.population import synthetic_population_grid
from repro.demand.spatiotemporal import SpatiotemporalDemandModel
from repro.radiation.exposure import ExposureCalculator

MULTIPLIER = 10.0


def _run_ablation():
    demand_model = SpatiotemporalDemandModel(
        population=synthetic_population_grid(resolution_deg=2.0)
    )
    walker_designer = DemandDrivenWalkerDesigner(altitude_km=560.0)
    rows = []
    for lat_res, time_res in ((2.0, 1.0), (4.0, 2.0)):
        designer = ConstellationDesigner(
            demand_model=demand_model,
            lat_resolution_deg=lat_res,
            time_resolution_hours=time_res,
            metrics_calculator=MetricsCalculator(exposure=ExposureCalculator(step_s=300.0)),
        )
        demand = designer.demand_grid(MULTIPLIER)
        walker = walker_designer.design(demand)
        for street_fraction in (0.3, 0.5, 0.7):
            ss_designer = GreedySSPlaneDesigner(
                altitude_km=560.0, street_half_width_fraction=street_fraction
            )
            ss = ss_designer.design(demand)
            rows.append(
                [
                    f"{lat_res:g}x{time_res:g}",
                    street_fraction,
                    ss.total_satellites,
                    walker.total_satellites,
                    round(walker.total_satellites / max(ss.total_satellites, 1), 2),
                ]
            )
    return rows


def test_ablation_design_choices(benchmark, once):
    rows = once(benchmark, _run_ablation)
    print("\nAblation: SS-vs-Walker reduction factor at multiplier 10")
    print(
        format_table(
            ["grid (deg x h)", "street fraction", "SS sats", "WD sats", "WD/SS"], rows
        )
    )
    # Whatever the modelling choices, the SS design never loses to Walker.
    assert all(row[4] >= 1.0 for row in rows)
