"""Headline claims of the abstract: satellite-count and radiation reductions."""

from __future__ import annotations

from repro.analysis.figures import headline_claims
from repro.analysis.report import format_table


def test_headline_claims(benchmark, once):
    data = once(benchmark, headline_claims, bandwidth_multipliers=(3.0, 10.0, 30.0))

    rows = [
        ["max satellite reduction factor (WD/SS)", round(data["max_satellite_reduction_factor"], 2)],
        ["max electron fluence reduction (%)", round(data["max_electron_reduction_percent"], 1)],
        ["max proton fluence reduction (%)", round(data["max_proton_reduction_percent"], 1)],
        ["paper claim: order of magnitude fewer satellites", "up to ~10x"],
        ["paper claim: radiation reduction", "~23%"],
    ]
    print("\nHeadline claims (measured vs paper)")
    print(format_table(["quantity", "value"], rows))

    # Directional reproduction: SS wins on both axes.  The measured satellite
    # reduction factor (~2-3x with this Walker baseline model) is smaller than
    # the paper's "up to an order of magnitude"; see EXPERIMENTS.md for the
    # sensitivity discussion.
    assert data["max_satellite_reduction_factor"] > 1.5
    assert data["max_electron_reduction_percent"] > 10.0
    assert data["max_proton_reduction_percent"] > 10.0
