"""Benchmark: fault-mask application overhead on the routing stage.

The fault subsystem applies compiled per-step outage masks on top of
:class:`~repro.network.topology.SnapshotSequence`'s precomputed feasibility
tensors -- one extra vectorised boolean pass per step, no per-edge Python
work.  This benchmark quantifies that claim: it times the per-step routing
stage (CSR export plus the batched all-stations ``csgraph`` route tables)
over a 24-hour, 360-satellite sequence twice -- healthy and under a
mild fault schedule (fractional link degradation plus a correlated plane
outage, chosen so the network stays routable and the Dijkstra cost stays
comparable) -- and asserts the masked run adds **less than 10%** overhead
at full size.

It also runs a fixed-seed fault sweep (radiation-driven failures plus the
plane outage) through the serial and process executors and asserts the
results are bit-identical -- the determinism half of the subsystem's
acceptance criterion -- recording everything in ``BENCH_fault_sweep.json``.

Run ``pytest benchmarks/bench_fault_sweep.py`` (add ``--smoke`` for the
small CI configuration, ``--benchmark-json=BENCH_fault_sweep.json`` to
record the result).
"""

from __future__ import annotations

import time

from repro.coverage.walker import WalkerDelta
from repro.demand.traffic_matrix import City, GravityTrafficModel
from repro.network.faults import FaultContext, FaultSpec, compile_faults
from repro.network.ground_station import GroundStation
from repro.network.routing import SnapshotRouter
from repro.network.simulation import NetworkSimulator, Scenario
from repro.network.topology import ConstellationTopology
from repro.orbits.time import Epoch, epoch_range

CITIES = (
    City("London", 51.5, -0.1, 9.6),
    City("New York", 40.7, -74.0, 20.0),
    City("Tokyo", 35.7, 139.7, 37.0),
    City("Sao Paulo", -23.6, -46.6, 22.0),
    City("Delhi", 28.6, 77.2, 32.0),
    City("Lagos", 6.5, 3.4, 15.0),
)

#: Masks for the routing-stage overhead measurement: most edges survive, so
#: the shortest-path work stays comparable and the delta is mask application.
MASK_SPECS = (
    FaultSpec("link_degradation", {"fraction": 0.3, "factor": 0.5, "seed": 5}),
    FaultSpec("plane_outage", {"count": 1, "seed": 5}),
)

SWEEP_SCENARIOS = [
    Scenario(name="healthy"),
    Scenario(
        name="radiation_plane",
        faults=[
            ("radiation", {"base_rate": 0.03, "exposure_step_s": 300.0, "seed": 3}),
            ("plane_outage", {"count": 2, "start_step": 4, "duration_steps": 6, "seed": 7}),
        ],
    ),
    Scenario(
        name="degraded",
        faults=("link_degradation", {"fraction": 0.3, "factor": 0.5, "seed": 5}),
    ),
]


def _walker_topology(epoch: Epoch, satellites: int, planes: int) -> ConstellationTopology:
    wd = WalkerDelta(
        altitude_km=560.0,
        inclination_deg=65.0,
        total_satellites=satellites,
        planes=planes,
        phasing=1,
    )
    elements = wd.satellite_elements()
    per_plane = wd.satellites_per_plane
    return ConstellationTopology(
        planes=[elements[i * per_plane : (i + 1) * per_plane] for i in range(wd.planes)],
        epoch=epoch,
    )


def _routing_stage_seconds(sequence, sources, schedule, repeats: int) -> float:
    """Time the per-step routing stage (CSR export + batched route tables)."""
    best = float("inf")
    for _ in range(repeats):
        begin = time.perf_counter()
        for step in range(len(sequence)):
            router = SnapshotRouter(
                backend="csgraph",
                arrays=sequence.edge_arrays(step, faults=schedule),
            )
            tables = router.routes_from_many(sources)
            for source in sources:
                # Touch one route per table so lazy reconstruction runs.
                next(iter(tables[source].items()), None)
        best = min(best, time.perf_counter() - begin)
    return best


def _run_comparison(smoke: bool) -> dict:
    epoch = Epoch.from_calendar(2025, 3, 20, 12, 0, 0.0)
    satellites, planes = (120, 8) if smoke else (360, 18)
    duration_hours = 6.0 if smoke else 24.0
    repeats = 2 if smoke else 3
    topology = _walker_topology(epoch, satellites, planes)
    stations = [GroundStation(c.name, c.latitude_deg, c.longitude_deg) for c in CITIES]
    epochs = epoch_range(epoch, duration_hours * 3600.0, 3600.0)
    sequence = topology.snapshot_sequence(epochs, stations)
    sources = [f"gs:{station.name}" for station in stations]

    context = FaultContext(
        topology, epochs, tuple(station.name for station in stations)
    )
    schedule = compile_faults(MASK_SPECS, context)

    # Warm both paths (scipy import, numpy dispatch, schedule label cache).
    _routing_stage_seconds(sequence, sources, None, 1)
    _routing_stage_seconds(sequence, sources, schedule, 1)

    healthy_s = _routing_stage_seconds(sequence, sources, None, repeats)
    masked_s = _routing_stage_seconds(sequence, sources, schedule, repeats)
    overhead = masked_s / healthy_s - 1.0

    # Determinism across executors: the same fixed-seed fault sweep must be
    # bit-identical on the serial path and the process pool.
    model = GravityTrafficModel(cities=CITIES, total_demand=60.0)
    simulator = NetworkSimulator(
        topology=topology, ground_stations=stations, traffic_model=model, flows_per_step=12
    )
    begin = time.perf_counter()
    serial = simulator.run_scenarios(
        SWEEP_SCENARIOS, epoch, duration_hours, backend="csgraph"
    )
    sweep_serial_s = time.perf_counter() - begin
    begin = time.perf_counter()
    pooled = simulator.run_scenarios(
        SWEEP_SCENARIOS,
        epoch,
        duration_hours,
        backend="csgraph",
        max_workers=2,
        executor="process",
    )
    sweep_process_s = time.perf_counter() - begin
    executors_identical = all(
        serial[name].steps == pooled[name].steps for name in serial
    )
    healthy_result = serial["healthy"]
    faulted_result = serial["radiation_plane"]

    return {
        "satellites": satellites,
        "steps": len(epochs),
        "healthy_routing_s": healthy_s,
        "masked_routing_s": masked_s,
        "mask_overhead_fraction": overhead,
        "sweep_serial_s": sweep_serial_s,
        "sweep_process_s": sweep_process_s,
        "executors_identical": executors_identical,
        "healthy_availability": healthy_result.availability(0.5),
        "faulted_availability": faulted_result.availability(0.5),
        "faulted_mean_stranded_gbps": faulted_result.mean_stranded_gbps(),
        "faulted_latency_stretch": faulted_result.latency_stretch(healthy_result),
        "faulted_time_to_recover_steps": faulted_result.time_to_recover_steps(
            healthy_result
        ),
    }


def test_fault_mask_overhead(benchmark, once, smoke):
    # Mask application is a vectorised boolean pass over precomputed
    # tensors; at full size it must stay under 10% of the routing stage.
    # The smoke floor is looser: tiny problems leave the masks a larger
    # relative share and CI machines are noisy.
    overhead_ceiling = 0.35 if smoke else 0.10

    stats = once(benchmark, _run_comparison, smoke)
    benchmark.extra_info.update(stats)

    print(
        f"\n{stats['satellites']} satellites, {stats['steps']} steps, "
        f"{len(CITIES)} stations:"
    )
    print(
        f"  routing stage: healthy {stats['healthy_routing_s']*1e3:.0f} ms vs "
        f"masked {stats['masked_routing_s']*1e3:.0f} ms "
        f"-> +{stats['mask_overhead_fraction']*100.0:.1f}%"
    )
    print(
        f"  3-scenario fault sweep: serial {stats['sweep_serial_s']:.2f} s, "
        f"process {stats['sweep_process_s']:.2f} s, "
        f"identical={stats['executors_identical']}"
    )
    print(
        f"  resilience: availability {stats['healthy_availability']:.2f} -> "
        f"{stats['faulted_availability']:.2f}, stranded "
        f"{stats['faulted_mean_stranded_gbps']:.2f} Gbps, stretch "
        f"{stats['faulted_latency_stretch']:.3f}, recover "
        f"{stats['faulted_time_to_recover_steps']} steps"
    )

    assert stats["executors_identical"], "fault sweep must not depend on the executor"
    assert stats["mask_overhead_fraction"] < overhead_ceiling
