"""Benchmark: closed-loop congestion-steering overhead and payoff.

Steering adds a control plane to every step of an adaptive scenario: a
``steer()`` pass over the edge list, a private per-scenario router (the
shared route tables cannot see per-scenario feedback state), a true-latency
re-read of every routed path against the unsteered ``delay_ms`` column and
an ``observe()`` EWMA/hysteresis update.  All of it is whole-array numpy
over int64 link codes, so the subsystem's acceptance criterion is that an
adaptive sweep stays within **15%** of the open-loop (``"static"``) sweep
at full size.

The payoff half re-runs the committed fault-recovery experiment of
``tests/network/test_steering.py``: under a correlated plane outage plus
zero-capacity link degradation, a sticky congestion-aware policy must
strand measurably less demand than open-loop routing.

Run ``pytest benchmarks/bench_steering.py`` (add ``--smoke`` for the small
CI configuration, ``--benchmark-json=BENCH_steering.json`` to record the
result).
"""

from __future__ import annotations

import time

from repro.coverage.walker import WalkerDelta
from repro.demand.traffic_matrix import City, GravityTrafficModel
from repro.network.ground_station import GroundStation
from repro.network.simulation import NetworkSimulator, Scenario
from repro.network.steering import STEERING_POLICIES, CongestionAwareSteering
from repro.network.topology import ConstellationTopology
from repro.orbits.time import Epoch

CITIES = (
    City("London", 51.5, -0.1, 9.6),
    City("New York", 40.7, -74.0, 20.0),
    City("Tokyo", 35.7, 139.7, 37.0),
    City("Sao Paulo", -23.6, -46.6, 22.0),
    City("Delhi", 28.6, 77.2, 32.0),
    City("Lagos", 6.5, 3.4, 15.0),
)

#: The committed fault-recovery recipe (see TestAdaptiveImprovesFaultSweep).
FAULTS = (
    ("plane_outage", {"count": 1, "seed": 7}),
    ("link_degradation", {"factor": 0.0, "fraction": 0.1, "seed": 3}),
)


def _walker_topology(epoch: Epoch, satellites: int, planes: int) -> ConstellationTopology:
    wd = WalkerDelta(
        altitude_km=560.0,
        inclination_deg=65.0,
        total_satellites=satellites,
        planes=planes,
        phasing=1,
    )
    elements = wd.satellite_elements()
    per_plane = wd.satellites_per_plane
    return ConstellationTopology(
        planes=[elements[i * per_plane : (i + 1) * per_plane] for i in range(wd.planes)],
        epoch=epoch,
    )


def _sweep_seconds(simulator, scenarios, epoch, duration_hours, repeats: int):
    best = float("inf")
    result = None
    for _ in range(repeats):
        begin = time.perf_counter()
        result = simulator.run_scenarios(
            scenarios, epoch, duration_hours, backend="csgraph", flow_engine="columnar"
        )
        best = min(best, time.perf_counter() - begin)
    return best, result


def _run_comparison(smoke: bool) -> dict:
    epoch = Epoch.from_calendar(2025, 3, 20, 12, 0, 0.0)
    satellites, planes = (120, 8) if smoke else (360, 18)
    duration_hours = 4.0 if smoke else 24.0
    flows_per_step = 20 if smoke else 30
    repeats = 2 if smoke else 3
    topology = _walker_topology(epoch, satellites, planes)
    stations = [GroundStation(c.name, c.latitude_deg, c.longitude_deg) for c in CITIES]
    model = GravityTrafficModel(cities=CITIES, total_demand=60.0)
    simulator = NetworkSimulator(
        topology=topology,
        ground_stations=stations,
        traffic_model=model,
        flows_per_step=flows_per_step,
    )

    def scenarios(steering: str):
        return [
            Scenario(
                name="sweep",
                allocator="proportional_array",
                faults=FAULTS,
                steering=steering,
            )
        ]

    # Warm both paths (snapshot sequence, scipy import, numpy dispatch).
    _sweep_seconds(simulator, scenarios("static"), epoch, duration_hours, 1)
    _sweep_seconds(simulator, scenarios("congestion-aware"), epoch, duration_hours, 1)

    static_s, _ = _sweep_seconds(
        simulator, scenarios("static"), epoch, duration_hours, repeats
    )
    adaptive_s, _ = _sweep_seconds(
        simulator, scenarios("congestion-aware"), epoch, duration_hours, repeats
    )
    overhead = adaptive_s / static_s - 1.0

    # Payoff: the sticky variant of the committed improvement test.  The
    # default hysteresis forgets a dead link two steps after routing away
    # from it; the sticky variant (instant engagement, no decay-driven
    # disengagement) accumulates the dead-region map across the run.
    sticky = CongestionAwareSteering(
        alpha=0.9, enter_band=0.5, exit_band=0.0, cooldown_steps=0, penalty=12.0
    )
    STEERING_POLICIES["sticky-congestion"] = sticky
    try:
        recovery_hours = duration_hours if smoke else 10.0
        _, static_run = _sweep_seconds(
            simulator, scenarios("static"), epoch, recovery_hours, 1
        )
        _, sticky_run = _sweep_seconds(
            simulator, scenarios("sticky-congestion"), epoch, recovery_hours, 1
        )
    finally:
        del STEERING_POLICIES["sticky-congestion"]
    static_stranded = static_run["sweep"].mean_stranded_gbps()
    sticky_stranded = sticky_run["sweep"].mean_stranded_gbps()
    reroutes = sum(s.steering_reroutes for s in sticky_run["sweep"].steps)

    # One instrumented adaptive sweep attributes the wall clock to pipeline
    # stages -- the steering row is the control plane's absolute cost, the
    # same quantity the overhead ratio above bounds relatively.
    traced = simulator.run_scenarios(
        scenarios("congestion-aware"),
        epoch,
        duration_hours,
        backend="csgraph",
        flow_engine="columnar",
        instrument=True,
    )

    return {
        "stage_breakdown": traced["sweep"].metrics.stage_summary(),
        "satellites": satellites,
        "steps": int(duration_hours),
        "flows_per_step": flows_per_step,
        "static_sweep_s": static_s,
        "adaptive_sweep_s": adaptive_s,
        "steering_overhead_fraction": overhead,
        "static_mean_stranded_gbps": static_stranded,
        "sticky_mean_stranded_gbps": sticky_stranded,
        "stranded_reduction_fraction": (
            1.0 - sticky_stranded / static_stranded if static_stranded > 0.0 else 0.0
        ),
        "sticky_reroutes": reroutes,
    }


def test_steering_overhead(benchmark, once, smoke):
    # The control plane is a handful of O(E)/O(path) numpy passes per step;
    # at full size it must stay under 15% of the open-loop sweep.  The
    # smoke ceiling is looser: tiny problems leave the constant-cost parts
    # a larger relative share and CI machines are noisy.
    overhead_ceiling = 0.60 if smoke else 0.15

    stats = once(benchmark, _run_comparison, smoke)
    benchmark.extra_info.update(stats)

    print(
        f"\n{stats['satellites']} satellites, {stats['steps']} steps, "
        f"{len(CITIES)} stations, {stats['flows_per_step']} flows/step:"
    )
    print(
        f"  sweep: static {stats['static_sweep_s']:.2f} s vs "
        f"congestion-aware {stats['adaptive_sweep_s']:.2f} s "
        f"-> +{stats['steering_overhead_fraction']*100.0:.1f}%"
    )
    print(
        f"  fault recovery: stranded {stats['static_mean_stranded_gbps']:.2f} "
        f"-> {stats['sticky_mean_stranded_gbps']:.2f} Gbps "
        f"(-{stats['stranded_reduction_fraction']*100.0:.1f}%, "
        f"{stats['sticky_reroutes']} reroutes)"
    )
    for stage, row in stats["stage_breakdown"].items():
        print(
            f"  {stage:<14} {row['seconds']*1e3:8.1f} ms  ({row['share']:.0%})"
        )

    assert stats["steering_overhead_fraction"] < overhead_ceiling
    assert stats["sticky_mean_stranded_gbps"] < stats["static_mean_stranded_gbps"]
