"""Figure 2: example repeat ground track and its coverage swath."""

from __future__ import annotations

import numpy as np

from repro.analysis.figures import figure02_rgt_ground_track


def test_fig02_rgt_ground_track(benchmark, once):
    data = once(benchmark, figure02_rgt_ground_track)

    print(
        f"\nFigure 2: RGT {data['revolutions']}:1 at {data['altitude_km']:.1f} km, "
        f"{len(data['latitude_deg'])} samples, swath half-width "
        f"{data['swath_half_width_deg']:.2f} deg"
    )

    # The example track is the ~15 rev/day LEO repeat orbit near 500-560 km at
    # 65 degrees inclination; its ground track reaches +-65 degrees latitude
    # and wraps all longitudes.
    assert data["revolutions"] in (14, 15, 16)
    assert 450.0 <= data["altitude_km"] <= 900.0
    assert np.max(np.abs(data["latitude_deg"])) <= 65.5
    assert np.ptp(data["longitude_deg"]) > 300.0
