"""Figure 8: spatiotemporal demand on the (latitude, local-time-of-day) grid."""

from __future__ import annotations

import numpy as np

from repro.analysis.figures import figure08_demand_grid
from repro.analysis.report import format_grid_summary


def test_fig08_demand_grid(benchmark, once):
    data = once(benchmark, figure08_demand_grid)

    values = data["demand_percent_of_peak"]
    lats = data["latitude_deg"]
    times = data["local_time_hours"]
    print("\nFigure 8:")
    print(format_grid_summary("demand (% of peak)", values))
    row, col = np.unravel_index(int(np.argmax(values)), values.shape)
    print(f"peak at latitude {lats[row]:.1f} deg, local time {times[col]:.1f} h")

    # Paper structure: demand clustered at intermediate Northern latitudes and
    # evening local times, with quiet night hours and empty poles.
    assert 15.0 <= lats[row] <= 45.0
    assert 18.0 <= times[col] <= 23.0
    night = values[:, (times > 3.0) & (times < 5.0)].max()
    evening = values[:, (times > 19.0) & (times < 22.0)].max()
    assert evening > 2.0 * night
    assert values[np.abs(lats) > 80.0, :].max() == 0.0
