"""Figure 9: satellites required to satisfy the demand grid (SS vs. Walker)."""

from __future__ import annotations

import numpy as np

from repro.analysis.figures import figure09_figure10_sweep
from repro.analysis.report import format_table

#: Bandwidth multipliers swept by the benchmark (the paper sweeps ~10-5000;
#: this range keeps the harness in the minutes range while spanning the
#: regimes where the SS advantage is largest and where it saturates).
MULTIPLIERS = (3.0, 10.0, 30.0, 100.0, 300.0)


def test_fig09_satellite_count(benchmark, once):
    data = once(benchmark, figure09_figure10_sweep, bandwidth_multipliers=MULTIPLIERS)

    rows = [
        [float(m), int(ss), int(wd), round(float(wd) / max(int(ss), 1), 2)]
        for m, ss, wd in zip(
            data["bandwidth_multiplier"], data["ss_satellites"], data["walker_satellites"]
        )
    ]
    print("\nFigure 9: satellites required vs bandwidth multiplier")
    print(format_table(["multiplier", "SS", "WD", "WD/SS"], rows))

    ss = data["ss_satellites"].astype(float)
    wd = data["walker_satellites"].astype(float)

    # Paper shape: SS needs fewer satellites everywhere in the sweep, the
    # advantage is largest at low demand, and both curves grow monotonically.
    assert np.all(ss < wd)
    ratios = wd / ss
    assert ratios[0] == ratios.max()
    assert ratios[-1] < ratios[0]
    assert np.all(np.diff(ss) > 0)
    assert np.all(np.diff(wd) > 0)

    # Stash the sweep for the Figure 10 benchmark (same designs).
    test_fig09_satellite_count.sweep_data = data
